//! Snapshot evaluation: the frozen catalog view branch tasks read, and
//! the effect log they return for single-threaded replay.
//!
//! The solver's round scheduler hands every branch evaluation of a
//! round to [`dc_exec::run_tasks`], which may run them on worker
//! threads. A worker cannot touch the solver's `RefCell` state or the
//! caller's base catalog (`&dyn Catalog` is not `Sync`, and its
//! interior mutability — demand-built index/stats/decorrelation caches
//! — must stay serialized). So evaluation is split in two:
//!
//! * **Frozen reads.** [`EvalSnapshot`] is an immutable, `Arc`-shared
//!   view of everything a branch evaluation can resolve, captured at
//!   one [`Catalog::version`] epoch: the equation values (`current`),
//!   the registered-application index, the base-relation
//!   index/statistics caches, the decorrelation entries of the current
//!   epoch, and the [`Universe`] — the transitively reachable slice of
//!   the base catalog (relations, selector definitions, scalar
//!   parameters, constructor signatures), pre-resolved on the solver
//!   thread when each equation registers. Snapshot construction is
//!   cheap: relations are copy-on-write handles and the caches hold
//!   `Arc`s, so a freeze is O(equations + cached entries) pointer
//!   bumps.
//! * **Logged writes.** [`SnapshotCatalog`] implements [`Catalog`] over
//!   a snapshot. Reads resolve from the frozen view; anything the
//!   mutable solver catalog would have recorded — a first-sighting
//!   constructor registration, a demand-built base index or statistics
//!   entry, a decorrelation-cache fill — is instead appended to a
//!   per-task [`Effect`] log (and served from a task-local cache for
//!   the rest of that task). The solver replays the logs
//!   single-threaded at the commit site, in task order, so
//!   registration, maintenance, and commits stay serialized exactly as
//!   on the sequential path.
//!
//! Meter ticks are the one side effect *not* logged: the
//! [`dc_governor::Meter`] is `Arc`-shared and its counters commute, so
//! workers tick it directly — which is what lets a deadline or tuple
//! ceiling trip *during* a parallel round rather than at replay.
//!
//! # Replay ordering guarantees
//!
//! Effects are replayed in task order (equation-ascending, then branch
//! order within an equation — the sequential evaluation order), and a
//! task's effects are replayed before its value is absorbed. Replay is
//! idempotent where the sequential path was (`register` by `AppKey`,
//! cache fills by `entry().or_insert`), so two tasks discovering the
//! same application or building the same index converge to one
//! registration, deterministically. Everything replayed lives in
//! solver-private state: an abort mid-replay leaves the caller-visible
//! database untouched (the atomic-abort invariant).

use std::cell::RefCell;
use std::collections::hash_map::Entry;
use std::sync::Arc;

use dc_calculus::ast::{Branch, Name, RangeExpr, SelectorDef, SetFormer, Target};
use dc_calculus::rewrite;
use dc_calculus::{Catalog, DecorrCached, EvalError};
use dc_index::{HashIndex, RelationStats};
use dc_relation::Relation;
use dc_value::{Domain, FxHashMap, FxHashSet, Schema, Value};

use super::{AppKey, ConstructorSource};

/// Positions-keyed cache of demand-built base-relation indexes.
type IndexCache = FxHashMap<(Name, Vec<usize>), Arc<HashIndex>>;

/// The transitively reachable slice of the base catalog, pre-resolved
/// on the solver thread so frozen evaluation never needs the caller's
/// `&dyn Catalog`. Grown (behind `Arc::make_mut`) each time an equation
/// registers; name lookups that fail at capture time are simply absent,
/// so evaluation raises the same `Unknown*` error the sequential path
/// would.
#[derive(Clone, Default)]
pub(super) struct Universe {
    /// Base-relation values (immutable for the duration of a solve).
    pub relations: FxHashMap<Name, Relation>,
    /// Selector definitions, closed transitively over their predicates.
    pub selectors: FxHashMap<Name, SelectorDef>,
    /// Scalar parameters resolvable from the base catalog.
    pub params: FxHashMap<Name, Value>,
    /// Constructor signatures, for validating (and logging) worker-side
    /// first sightings of an application.
    pub ctors: FxHashMap<Name, CtorSig>,
}

/// What a worker needs to *validate* an unseen constructor application
/// without registering it: the registration itself is deferred to the
/// effect replay.
#[derive(Clone)]
pub(super) struct CtorSig {
    /// Constructor name (diagnostics).
    pub name: Name,
    /// Number of relation parameters.
    pub rel_params: usize,
    /// Scalar parameter names and domains (checked per application).
    pub scalar_params: Vec<(Name, Domain)>,
    /// Declared result schema — the value of a fresh application is
    /// `∅ : result`, matching the sequential path where every equation
    /// starts at the empty relation.
    pub result: Schema,
}

/// The immutable view one round's branch tasks evaluate against. See
/// the [module docs](self) for what is frozen and why the freeze is
/// cheap.
pub(super) struct EvalSnapshot {
    /// The solver's data epoch at freeze time, served through
    /// [`Catalog::version`] so evaluator caches scope correctly.
    pub epoch: u64,
    /// Pre-resolved base-catalog slice.
    pub universe: Arc<Universe>,
    /// Registered applications → equation index.
    pub index: FxHashMap<AppKey, usize>,
    /// Per-equation accumulated values (COW handles).
    pub current: Vec<Relation>,
    /// Demand-built indexes over base relations.
    pub base_indexes: IndexCache,
    /// Cached statistics over base relations.
    pub base_stats: FxHashMap<Name, Arc<RelationStats>>,
    /// Decorrelation entries of the *current* epoch (frozen empty when
    /// the solver cache is stale).
    pub decorr: FxHashMap<RangeExpr, DecorrCached>,
}

/// One logged side effect of a frozen branch evaluation, replayed
/// single-threaded by the solver at the commit site.
pub(super) enum Effect {
    /// A first-sighting constructor application (validated against the
    /// frozen [`CtorSig`]; the replay performs the real registration
    /// and seeds the new equation's peers).
    Register {
        /// Constructor name.
        constructor: Name,
        /// Actual base relation.
        base: Relation,
        /// Actual relation arguments.
        args: Vec<Relation>,
        /// Actual scalar arguments.
        scalar_args: Vec<Value>,
    },
    /// A base-relation index built on demand during the task.
    BaseIndex {
        /// Relation name.
        name: Name,
        /// The built index (its positions key the solver cache).
        index: Arc<HashIndex>,
    },
    /// Base-relation statistics collected on demand during the task.
    BaseStats {
        /// Relation name.
        name: Name,
        /// The collected statistics.
        stats: Arc<RelationStats>,
    },
    /// A decorrelation entry built (or refused) during the task.
    Decorr {
        /// The correlated range the entry is keyed by.
        range: RangeExpr,
        /// The built entry or the memoised refusal.
        entry: DecorrCached,
    },
}

// Snapshots cross thread boundaries by design; assert the contract at
// compile time so a field change cannot silently break it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EvalSnapshot>();
    assert_send_sync::<Effect>();
};

/// Grow the universe with everything reachable from one equation body:
/// relation names, selector definitions (closed transitively over
/// their predicates), scalar parameters, and constructor signatures.
/// Over-capture is harmless — overridden formal names are shadowed by
/// the evaluation overlay before the snapshot catalog is consulted, and
/// never-probed entries just ride along as pointer bumps.
pub(super) fn capture_universe(
    universe: &mut Arc<Universe>,
    source: &dyn ConstructorSource,
    body: &SetFormer,
) {
    let range = RangeExpr::SetFormer(body.clone());
    let mut rels: FxHashSet<Name> = rewrite::relation_names(&range);
    let mut params: FxHashSet<Name> = rewrite::param_names(&range);
    let mut ctor_names: FxHashSet<Name> = constructed_names(&range);
    let mut pending: Vec<Name> = rewrite::selector_names(&range).into_iter().collect();

    let u = Arc::make_mut(universe);
    let mut seen: FxHashSet<Name> = FxHashSet::default();
    while let Some(s) = pending.pop() {
        if !seen.insert(s.clone()) {
            continue;
        }
        let def = if let Some(d) = u.selectors.get(&s) {
            d.clone()
        } else if let Ok(d) = source.base_catalog().selector(&s) {
            let d = d.clone();
            u.selectors.insert(s, d.clone());
            d
        } else {
            // Unresolvable: frozen evaluation raises the same
            // `UnknownSelector` the sequential path would.
            continue;
        };
        rels.extend(rewrite::relation_names_formula(&def.predicate));
        params.extend(rewrite::param_names_formula(&def.predicate));
        ctor_names.extend(constructed_names(&predicate_probe(&def)));
        pending.extend(rewrite::selector_names_formula(&def.predicate));
    }
    for n in rels {
        if let Entry::Vacant(e) = u.relations.entry(n) {
            if let Ok(v) = source.base_catalog().relation(e.key()) {
                e.insert(v);
            }
        }
    }
    for n in params {
        if let Entry::Vacant(e) = u.params.entry(n) {
            if let Ok(v) = source.base_catalog().scalar_param(e.key()) {
                e.insert(v);
            }
        }
    }
    for n in ctor_names {
        if let Entry::Vacant(e) = u.ctors.entry(n) {
            if let Ok(c) = source.constructor_def(e.key()) {
                e.insert(CtorSig {
                    name: c.name.clone(),
                    rel_params: c.rel_params.len(),
                    scalar_params: c.scalar_params.clone(),
                    result: c.result.clone(),
                });
            }
        }
    }
}

/// Wrap a selector predicate in a throwaway set-former so the
/// range-level constructor collector can walk it.
fn predicate_probe(def: &SelectorDef) -> RangeExpr {
    RangeExpr::SetFormer(SetFormer {
        branches: vec![Branch {
            target: Target::Var(def.element_var.clone()),
            bindings: vec![],
            predicate: def.predicate.clone(),
        }],
    })
}

/// Constructor names applied anywhere in a range expression.
fn constructed_names(range: &RangeExpr) -> FxHashSet<Name> {
    rewrite::collect_constructed(range)
        .into_iter()
        .filter_map(|c| match c {
            RangeExpr::Constructed { constructor, .. } => Some(constructor),
            _ => None,
        })
        .collect()
}

/// The per-task [`Catalog`]: frozen reads, logged writes. Constructed
/// on the worker from the `Arc`-shared snapshot; consumed with
/// [`SnapshotCatalog::into_effects`] after evaluation.
pub(super) struct SnapshotCatalog {
    snap: Arc<EvalSnapshot>,
    effects: RefCell<Vec<Effect>>,
    /// Task-local caches: a build logged once is also served for the
    /// rest of this task, mirroring the within-evaluation reuse the
    /// mutable solver catalog provided.
    local_indexes: RefCell<IndexCache>,
    local_stats: RefCell<FxHashMap<Name, Arc<RelationStats>>>,
    local_decorr: RefCell<FxHashMap<RangeExpr, DecorrCached>>,
}

impl SnapshotCatalog {
    pub(super) fn new(snap: Arc<EvalSnapshot>) -> SnapshotCatalog {
        SnapshotCatalog {
            snap,
            effects: RefCell::new(Vec::new()),
            local_indexes: RefCell::new(FxHashMap::default()),
            local_stats: RefCell::new(FxHashMap::default()),
            local_decorr: RefCell::new(FxHashMap::default()),
        }
    }

    /// The ordered effect log, for single-threaded replay.
    pub(super) fn into_effects(self) -> Vec<Effect> {
        self.effects.into_inner()
    }
}

impl Catalog for SnapshotCatalog {
    fn relation(&self, name: &str) -> Result<Relation, EvalError> {
        self.snap
            .universe
            .relations
            .get(name)
            .cloned()
            .ok_or_else(|| EvalError::UnknownRelation(name.to_string()))
    }

    fn selector(&self, name: &str) -> Result<&SelectorDef, EvalError> {
        self.snap
            .universe
            .selectors
            .get(name)
            .ok_or_else(|| EvalError::UnknownSelector(name.to_string()))
    }

    fn scalar_param(&self, name: &str) -> Result<Value, EvalError> {
        self.snap
            .universe
            .params
            .get(name)
            .cloned()
            .ok_or_else(|| EvalError::UnknownParam(name.to_string()))
    }

    /// Known applications resolve to the frozen current iterate; first
    /// sightings are validated against the frozen signature, logged for
    /// replay-time registration, and valued at `∅ : result` — exactly
    /// the value the sequential path would return for an equation
    /// registered mid-round.
    fn apply_constructor(
        &self,
        base: Relation,
        name: &str,
        args: Vec<Relation>,
        scalar_args: Vec<Value>,
    ) -> Result<Relation, EvalError> {
        let key = AppKey::new(name, &base, &args, &scalar_args);
        if let Some(&i) = self.snap.index.get(&key) {
            return Ok(self.snap.current[i].clone());
        }
        let sig = self
            .snap
            .universe
            .ctors
            .get(name)
            .ok_or_else(|| EvalError::UnknownConstructor(name.to_string()))?;
        // Mirror `State::register`'s check order, so a malformed
        // application raises the identical error class under every
        // thread count.
        if args.len() != sig.rel_params {
            return Err(EvalError::ArityMismatch {
                name: sig.name.clone(),
                expected: sig.rel_params,
                actual: args.len(),
            });
        }
        if scalar_args.len() != sig.scalar_params.len() {
            return Err(EvalError::ArityMismatch {
                name: sig.name.clone(),
                expected: sig.scalar_params.len(),
                actual: scalar_args.len(),
            });
        }
        for ((_, pdom), v) in sig.scalar_params.iter().zip(&scalar_args) {
            pdom.check(v)?;
        }
        let value = Relation::new(sig.result.clone());
        self.effects.borrow_mut().push(Effect::Register {
            constructor: name.to_string(),
            base,
            args,
            scalar_args,
        });
        Ok(value)
    }

    fn index(&self, name: &str, positions: &[usize]) -> Option<Arc<HashIndex>> {
        let key = (name.to_string(), positions.to_vec());
        if let Some(idx) = self.snap.base_indexes.get(&key) {
            return Some(idx.clone());
        }
        if let Some(idx) = self.local_indexes.borrow().get(&key) {
            return Some(idx.clone());
        }
        let rel = self.snap.universe.relations.get(name)?;
        let idx = Arc::new(HashIndex::build(rel, positions.to_vec()));
        self.local_indexes.borrow_mut().insert(key, idx.clone());
        self.effects.borrow_mut().push(Effect::BaseIndex {
            name: name.to_string(),
            index: idx.clone(),
        });
        Some(idx)
    }

    fn stats(&self, name: &str) -> Option<Arc<RelationStats>> {
        if let Some(s) = self.snap.base_stats.get(name) {
            return Some(s.clone());
        }
        if let Some(s) = self.local_stats.borrow().get(name) {
            return Some(s.clone());
        }
        let rel = self.snap.universe.relations.get(name)?;
        let s = Arc::new(RelationStats::collect(rel));
        self.local_stats
            .borrow_mut()
            .insert(name.to_string(), s.clone());
        self.effects.borrow_mut().push(Effect::BaseStats {
            name: name.to_string(),
            stats: s.clone(),
        });
        Some(s)
    }

    fn version(&self) -> u64 {
        self.snap.epoch
    }

    fn decorr_entry(&self, range: &RangeExpr) -> Option<DecorrCached> {
        if let Some(e) = self.snap.decorr.get(range) {
            return Some(e.clone());
        }
        self.local_decorr.borrow().get(range).cloned()
    }

    fn cache_decorr_entry(&self, range: &RangeExpr, entry: DecorrCached) {
        self.local_decorr
            .borrow_mut()
            .insert(range.clone(), entry.clone());
        self.effects.borrow_mut().push(Effect::Decorr {
            range: range.clone(),
            entry,
        });
    }
}
