//! §3.4: the spectrum of fixpoint-enhancement options for database
//! programming languages.
//!
//! The paper lists six alternatives to its constructor mechanism; this
//! module implements the ones that are executable strategies, so the E5
//! ablation can measure them against constructors:
//!
//! 1. **Program iteration** ([`program_iteration`]) — the raw
//!    `REPEAT … UNTIL Ahead = Oldahead` loop written by the programmer;
//!    "the programmer can write anything into the loop", so nothing is
//!    optimizable.
//! 2. **Recursive relation-valued functions** ([`recursive_function`]) —
//!    the paper's `FUNCTION ahead(Current: aheadrel): aheadrel` example,
//!    literally recursive.
//! 3. **Specialised LFP operators** ([`transitive_closure`]) — the
//!    QBE/QUEL`*`-style transitive-closure operator: fast, but only for
//!    the one shape it hard-codes.
//! 4. **Bounded iteration** ([`iterate_n`]) — the `ahead_n` family of
//!    §3.1, for the convergence experiment E3.
//!
//! Equational relation definitions and views-as-functions are
//! semantically the constructor mechanism under other syntax; logic
//! programming is covered by the `dc-prolog` baseline.

use dc_index::HashIndex;
use dc_relation::{algebra, Relation, RelationError};

/// Iterate `step` from the empty relation until a fixpoint, returning
/// the limit and the number of iterations (the §3.1 REPEAT loop).
pub fn program_iteration<F>(
    schema: dc_value::Schema,
    mut step: F,
) -> Result<(Relation, usize), RelationError>
where
    F: FnMut(&Relation) -> Result<Relation, RelationError>,
{
    let mut current = Relation::new(schema);
    let mut iterations = 0;
    loop {
        iterations += 1;
        let next = step(&current)?;
        if next == current {
            return Ok((current, iterations));
        }
        current = next;
    }
}

/// Iterate `step` exactly `n` times from the empty relation — the
/// paper's `ahead_n` sequence (§3.1), whose limit is `ahead`.
pub fn iterate_n<F>(
    schema: dc_value::Schema,
    mut step: F,
    n: usize,
) -> Result<Relation, RelationError>
where
    F: FnMut(&Relation) -> Result<Relation, RelationError>,
{
    let mut current = Relation::new(schema);
    for _ in 0..n {
        current = step(&current)?;
    }
    Ok(current)
}

/// The paper's recursive relation-valued function (§3.4):
///
/// ```text
/// FUNCTION ahead (Current: aheadrel): aheadrel;
/// BEGIN
///   New := …;
///   IF New = Current THEN RETURN Current ELSE RETURN ahead(New)
/// END ahead
/// ```
///
/// Implemented with genuine recursion to preserve the cost profile the
/// paper criticises ("functions are too general to be optimized
/// efficiently").
pub fn recursive_function<F>(current: Relation, step: &mut F) -> Result<Relation, RelationError>
where
    F: FnMut(&Relation) -> Result<Relation, RelationError>,
{
    let new = step(&current)?;
    if new == current {
        Ok(current)
    } else {
        recursive_function(new, step)
    }
}

/// A specialised transitive-closure operator in the spirit of
/// Query-by-Example's closure operator and QUEL's `*` (§3.4): computes
/// the closure of a binary relation under
/// `(a, b) ∈ R, (b, c) ∈ TC ⇒ (a, c) ∈ TC`, using a hash index and a
/// frontier — the best the procedural special case can do, but *only*
/// for this shape.
pub fn transitive_closure(
    rel: &Relation,
    from_pos: usize,
    to_pos: usize,
) -> Result<Relation, RelationError> {
    let mut closure = rel.clone();
    // Index base edges by their from-attribute.
    let index = HashIndex::build(rel, vec![from_pos]);
    // Frontier of newly added pairs.
    let mut frontier: Vec<dc_value::Tuple> = rel.iter().cloned().collect();
    while let Some(pair) = frontier.pop() {
        // pair = (a, …, b); extend with edges (b, …, c).
        let b = pair.project(&[to_pos]);
        for edge in index.probe(&b) {
            let mut fields: Vec<dc_value::Value> = pair.fields().to_vec();
            fields[to_pos] = edge.get(to_pos).clone();
            fields[from_pos] = pair.get(from_pos).clone();
            let new_pair = dc_value::Tuple::new(fields);
            if closure.insert_unchecked(new_pair.clone())? {
                frontier.push(new_pair);
            }
        }
    }
    Ok(closure)
}

/// Convenience step function: one application of the `ahead` rule
/// (base ∪ base ⋈ current) for use with the iteration combinators
/// above. `from_pos`/`to_pos` index the join attributes of `base`;
/// `current` is joined on its own `from_pos`.
pub fn ahead_step(
    base: &Relation,
    current: &Relation,
    from_pos: usize,
    to_pos: usize,
) -> Result<Relation, RelationError> {
    let mut out = base.clone();
    if !current.is_empty() {
        let index = HashIndex::build(current, vec![from_pos]);
        for edge in base.iter() {
            let key = edge.project(&[to_pos]);
            for cont in index.probe(&key) {
                let mut fields: Vec<dc_value::Value> = edge.fields().to_vec();
                fields[to_pos] = cont.get(to_pos).clone();
                out.insert_unchecked(dc_value::Tuple::new(fields))?;
            }
        }
    }
    algebra::union(&out, current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_value::{tuple, Domain, Schema};

    fn edges_schema() -> Schema {
        Schema::of(&[("front", Domain::Str), ("back", Domain::Str)])
    }

    fn chain(n: usize) -> Relation {
        Relation::from_tuples(
            edges_schema(),
            (0..n).map(|i| tuple![format!("o{i}"), format!("o{}", i + 1)]),
        )
        .unwrap()
    }

    fn closure_size_of_chain(n: usize) -> usize {
        n * (n + 1) / 2
    }

    #[test]
    fn program_iteration_computes_closure() {
        let base = chain(6);
        let (out, iters) =
            program_iteration(edges_schema(), |cur| ahead_step(&base, cur, 0, 1)).unwrap();
        assert_eq!(out.len(), closure_size_of_chain(6));
        assert!(iters >= 3);
    }

    #[test]
    fn recursive_function_matches_iteration() {
        let base = chain(6);
        let by_iter = program_iteration(edges_schema(), |cur| ahead_step(&base, cur, 0, 1))
            .unwrap()
            .0;
        let by_rec = recursive_function(Relation::new(edges_schema()), &mut |cur| {
            ahead_step(&base, cur, 0, 1)
        })
        .unwrap();
        assert_eq!(by_iter, by_rec);
    }

    #[test]
    fn tc_operator_matches_iteration() {
        let base = chain(8);
        let by_iter = program_iteration(edges_schema(), |cur| ahead_step(&base, cur, 0, 1))
            .unwrap()
            .0;
        let by_tc = transitive_closure(&base, 0, 1).unwrap();
        assert_eq!(by_iter, by_tc);
    }

    #[test]
    fn tc_operator_on_cycle_terminates() {
        let mut base = chain(4);
        base.insert(tuple!["o4", "o0"]).unwrap();
        let tc = transitive_closure(&base, 0, 1).unwrap();
        assert_eq!(tc.len(), 25); // complete digraph on 5 nodes
    }

    #[test]
    fn tc_operator_on_dag_with_sharing() {
        // Diamond: a→b, a→c, b→d, c→d.
        let base = Relation::from_tuples(
            edges_schema(),
            vec![
                tuple!["a", "b"],
                tuple!["a", "c"],
                tuple!["b", "d"],
                tuple!["c", "d"],
            ],
        )
        .unwrap();
        let tc = transitive_closure(&base, 0, 1).unwrap();
        assert_eq!(tc.len(), 5); // 4 edges + (a,d)
        assert!(tc.contains(&tuple!["a", "d"]));
    }

    #[test]
    fn iterate_n_is_ahead_n() {
        // The §3.1 sequence: ahead_n contains pairs separated by ≤ n
        // steps; on a 6-chain, iterate 1 = base only (step adds joins
        // with the empty current in round one).
        let base = chain(6);
        let a1 = iterate_n(edges_schema(), |cur| ahead_step(&base, cur, 0, 1), 1).unwrap();
        assert_eq!(a1.len(), 6);
        let a2 = iterate_n(edges_schema(), |cur| ahead_step(&base, cur, 0, 1), 2).unwrap();
        // pairs at distance ≤ 2: 6 + 5 = 11
        assert_eq!(a2.len(), 11);
        // The limit is reached at n = longest path.
        let a_lim = iterate_n(edges_schema(), |cur| ahead_step(&base, cur, 0, 1), 7).unwrap();
        assert_eq!(a_lim.len(), closure_size_of_chain(6));
        // Monotone: ahead_n ⊆ ahead_{n+1} (the §3.2 convergence
        // argument).
        assert!(algebra::is_subset(&a1, &a2));
        assert!(algebra::is_subset(&a2, &a_lim));
    }

    #[test]
    fn empty_base_everywhere() {
        let base = Relation::new(edges_schema());
        let (out, iters) =
            program_iteration(edges_schema(), |cur| ahead_step(&base, cur, 0, 1)).unwrap();
        assert!(out.is_empty());
        assert_eq!(iters, 1);
        assert!(transitive_closure(&base, 0, 1).unwrap().is_empty());
    }
}
