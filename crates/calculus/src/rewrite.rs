//! Formula normalisation and substitution utilities.
//!
//! * [`to_nnf`] implements the rewrite from the paper's monotonicity
//!   lemma (§3.3): push negations inward via generalised De Morgan and
//!   quantifier duality, eliminating double negations. After NNF, a
//!   positive expression contains no tracked occurrence under `NOT` —
//!   which makes monotonicity syntactically evident.
//! * [`substitute_rel`] / [`substitute_params_formula`] perform the
//!   formal → actual substitutions of §3.2 ("replacing all formal
//!   parameters by their actual values" when building the gⱼ
//!   functions); [`substitute_param_exprs_formula`] is the
//!   expression-level variant used to rewrite selector applications
//!   for decorrelation.
//! * [`relation_names`] / [`collect_constructed`] are the name analyses
//!   that drive constructor-application instantiation and the
//!   quant-graph partitioning of §4.

use dc_value::{FxHashMap, FxHashSet, Value};

use crate::ast::{Branch, Formula, Name, RangeExpr, ScalarExpr, SetFormer, Target};

/// Push negations inward (negation normal form).
///
/// `NOT` survives only directly over membership literals
/// (`NOT (r IN Rel)`), which have no sub-formulas.
pub fn to_nnf(f: Formula) -> Formula {
    match f {
        Formula::Not(inner) => negate_nnf(*inner),
        Formula::And(a, b) => Formula::And(Box::new(to_nnf(*a)), Box::new(to_nnf(*b))),
        Formula::Or(a, b) => Formula::Or(Box::new(to_nnf(*a)), Box::new(to_nnf(*b))),
        Formula::Some(v, r, body) => Formula::Some(v, r, Box::new(to_nnf(*body))),
        Formula::All(v, r, body) => Formula::All(v, r, Box::new(to_nnf(*body))),
        leaf => leaf,
    }
}

/// NNF of `NOT f`.
fn negate_nnf(f: Formula) -> Formula {
    match f {
        Formula::True => Formula::False,
        Formula::False => Formula::True,
        Formula::Not(inner) => to_nnf(*inner),
        // Comparisons absorb the negation into the operator.
        Formula::Cmp(l, op, r) => Formula::Cmp(l, op.negate(), r),
        // Generalised De Morgan.
        Formula::And(a, b) => Formula::Or(Box::new(negate_nnf(*a)), Box::new(negate_nnf(*b))),
        Formula::Or(a, b) => Formula::And(Box::new(negate_nnf(*a)), Box::new(negate_nnf(*b))),
        // Range-coupled quantifier duality:
        // NOT SOME v IN R (p) ≡ ALL v IN R (NOT p), and dually.
        Formula::Some(v, r, body) => Formula::All(v, r, Box::new(negate_nnf(*body))),
        Formula::All(v, r, body) => Formula::Some(v, r, Box::new(negate_nnf(*body))),
        // Membership literals keep an explicit NOT.
        leaf @ (Formula::Member(..) | Formula::TupleIn(..)) => Formula::Not(Box::new(leaf)),
    }
}

/// Substitute relation names with range expressions throughout a range
/// expression. Used to instantiate constructor bodies: the formal base
/// name (`Rel`) and formal relation parameters (`Ontop`) are mapped to
/// their actuals.
pub fn substitute_rel(range: &RangeExpr, map: &FxHashMap<Name, RangeExpr>) -> RangeExpr {
    match range {
        RangeExpr::Rel(n) => map.get(n).cloned().unwrap_or_else(|| range.clone()),
        RangeExpr::Selected {
            base,
            selector,
            args,
        } => RangeExpr::Selected {
            base: Box::new(substitute_rel(base, map)),
            selector: selector.clone(),
            args: args.clone(),
        },
        RangeExpr::Constructed {
            base,
            constructor,
            args,
            scalar_args,
        } => RangeExpr::Constructed {
            base: Box::new(substitute_rel(base, map)),
            constructor: constructor.clone(),
            args: args.iter().map(|a| substitute_rel(a, map)).collect(),
            scalar_args: scalar_args.clone(),
        },
        RangeExpr::SetFormer(sf) => RangeExpr::SetFormer(SetFormer {
            branches: sf
                .branches
                .iter()
                .map(|b| Branch {
                    target: b.target.clone(),
                    bindings: b
                        .bindings
                        .iter()
                        .map(|(v, r)| (v.clone(), substitute_rel(r, map)))
                        .collect(),
                    predicate: substitute_rel_formula(&b.predicate, map),
                })
                .collect(),
        }),
    }
}

/// Substitute relation names inside a formula.
pub fn substitute_rel_formula(f: &Formula, map: &FxHashMap<Name, RangeExpr>) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Cmp(..) => f.clone(),
        Formula::And(a, b) => Formula::And(
            Box::new(substitute_rel_formula(a, map)),
            Box::new(substitute_rel_formula(b, map)),
        ),
        Formula::Or(a, b) => Formula::Or(
            Box::new(substitute_rel_formula(a, map)),
            Box::new(substitute_rel_formula(b, map)),
        ),
        Formula::Not(inner) => Formula::Not(Box::new(substitute_rel_formula(inner, map))),
        Formula::Some(v, r, body) => Formula::Some(
            v.clone(),
            substitute_rel(r, map),
            Box::new(substitute_rel_formula(body, map)),
        ),
        Formula::All(v, r, body) => Formula::All(
            v.clone(),
            substitute_rel(r, map),
            Box::new(substitute_rel_formula(body, map)),
        ),
        Formula::Member(v, r) => Formula::Member(v.clone(), substitute_rel(r, map)),
        Formula::TupleIn(exprs, r) => Formula::TupleIn(exprs.clone(), substitute_rel(r, map)),
    }
}

/// Substitute scalar parameters with arbitrary scalar *expressions*
/// inside a scalar expression. The expression-level generalisation of
/// [`substitute_params_scalar`]: where that function fills `Param`
/// holes with constants (§3.2's partial evaluation), this one fills
/// them with actual-argument expressions — used to rewrite a selector
/// application `base[s(args)]` into the equivalent filter
/// `{EACH el IN base: pred[params := args]}` so that correlated
/// selector arguments become analysable correlation atoms
/// (see `joinplan::decorrelate_filter`).
///
/// The caller owns capture avoidance: substituted expressions must not
/// mention variables bound inside the formula they are substituted
/// into.
pub fn substitute_param_exprs_scalar(
    e: &ScalarExpr,
    map: &FxHashMap<Name, ScalarExpr>,
) -> ScalarExpr {
    match e {
        ScalarExpr::Param(p) => match map.get(p) {
            Some(actual) => actual.clone(),
            None => e.clone(),
        },
        ScalarExpr::Arith(l, op, r) => ScalarExpr::Arith(
            Box::new(substitute_param_exprs_scalar(l, map)),
            *op,
            Box::new(substitute_param_exprs_scalar(r, map)),
        ),
        _ => e.clone(),
    }
}

/// Substitute scalar parameters with scalar expressions throughout a
/// formula — see [`substitute_param_exprs_scalar`].
pub fn substitute_param_exprs_formula(f: &Formula, map: &FxHashMap<Name, ScalarExpr>) -> Formula {
    match f {
        Formula::True | Formula::False => f.clone(),
        Formula::Cmp(l, op, r) => Formula::Cmp(
            substitute_param_exprs_scalar(l, map),
            *op,
            substitute_param_exprs_scalar(r, map),
        ),
        Formula::And(a, b) => Formula::And(
            Box::new(substitute_param_exprs_formula(a, map)),
            Box::new(substitute_param_exprs_formula(b, map)),
        ),
        Formula::Or(a, b) => Formula::Or(
            Box::new(substitute_param_exprs_formula(a, map)),
            Box::new(substitute_param_exprs_formula(b, map)),
        ),
        Formula::Not(inner) => Formula::Not(Box::new(substitute_param_exprs_formula(inner, map))),
        Formula::Some(v, r, body) => Formula::Some(
            v.clone(),
            substitute_param_exprs_range(r, map),
            Box::new(substitute_param_exprs_formula(body, map)),
        ),
        Formula::All(v, r, body) => Formula::All(
            v.clone(),
            substitute_param_exprs_range(r, map),
            Box::new(substitute_param_exprs_formula(body, map)),
        ),
        Formula::Member(v, r) => Formula::Member(v.clone(), substitute_param_exprs_range(r, map)),
        Formula::TupleIn(exprs, r) => Formula::TupleIn(
            exprs
                .iter()
                .map(|e| substitute_param_exprs_scalar(e, map))
                .collect(),
            substitute_param_exprs_range(r, map),
        ),
    }
}

/// Substitute scalar parameters with scalar expressions throughout a
/// range expression — see [`substitute_param_exprs_scalar`].
pub fn substitute_param_exprs_range(r: &RangeExpr, map: &FxHashMap<Name, ScalarExpr>) -> RangeExpr {
    match r {
        RangeExpr::Rel(_) => r.clone(),
        RangeExpr::Selected {
            base,
            selector,
            args,
        } => RangeExpr::Selected {
            base: Box::new(substitute_param_exprs_range(base, map)),
            selector: selector.clone(),
            args: args
                .iter()
                .map(|a| substitute_param_exprs_scalar(a, map))
                .collect(),
        },
        RangeExpr::Constructed {
            base,
            constructor,
            args,
            scalar_args,
        } => RangeExpr::Constructed {
            base: Box::new(substitute_param_exprs_range(base, map)),
            constructor: constructor.clone(),
            args: args
                .iter()
                .map(|a| substitute_param_exprs_range(a, map))
                .collect(),
            scalar_args: scalar_args
                .iter()
                .map(|s| substitute_param_exprs_scalar(s, map))
                .collect(),
        },
        RangeExpr::SetFormer(sf) => RangeExpr::SetFormer(SetFormer {
            branches: sf
                .branches
                .iter()
                .map(|b| Branch {
                    target: match &b.target {
                        Target::Var(v) => Target::Var(v.clone()),
                        Target::Tuple(exprs) => Target::Tuple(
                            exprs
                                .iter()
                                .map(|e| substitute_param_exprs_scalar(e, map))
                                .collect(),
                        ),
                    },
                    bindings: b
                        .bindings
                        .iter()
                        .map(|(v, range)| (v.clone(), substitute_param_exprs_range(range, map)))
                        .collect(),
                    predicate: substitute_param_exprs_formula(&b.predicate, map),
                })
                .collect(),
        }),
    }
}

/// Collect every variable *bound* anywhere inside a formula: quantifier
/// variables and set-former binding variables. Used for capture checks
/// before [`substitute_param_exprs_formula`]: an actual-argument
/// expression mentioning one of these names must not be substituted in.
pub fn bound_vars_formula(f: &Formula, out: &mut FxHashSet<Name>) {
    match f {
        Formula::True | Formula::False | Formula::Cmp(..) => {}
        Formula::And(a, b) | Formula::Or(a, b) => {
            bound_vars_formula(a, out);
            bound_vars_formula(b, out);
        }
        Formula::Not(inner) => bound_vars_formula(inner, out),
        Formula::Some(v, r, body) | Formula::All(v, r, body) => {
            out.insert(v.clone());
            bound_vars_range(r, out);
            bound_vars_formula(body, out);
        }
        Formula::Member(_, r) | Formula::TupleIn(_, r) => bound_vars_range(r, out),
    }
}

/// Collect every variable bound anywhere inside a range expression —
/// see [`bound_vars_formula`].
pub fn bound_vars_range(r: &RangeExpr, out: &mut FxHashSet<Name>) {
    match r {
        RangeExpr::Rel(_) => {}
        RangeExpr::Selected { base, .. } => bound_vars_range(base, out),
        RangeExpr::Constructed { base, args, .. } => {
            bound_vars_range(base, out);
            for a in args {
                bound_vars_range(a, out);
            }
        }
        RangeExpr::SetFormer(sf) => {
            for b in &sf.branches {
                for (v, range) in &b.bindings {
                    out.insert(v.clone());
                    bound_vars_range(range, out);
                }
                bound_vars_formula(&b.predicate, out);
            }
        }
    }
}

/// Lift a value map into an expression map (`Param` holes filled with
/// `Const` leaves), so the value-substitution entry points below can
/// delegate to the expression-level walkers instead of duplicating the
/// traversal.
fn const_exprs(map: &FxHashMap<Name, Value>) -> FxHashMap<Name, ScalarExpr> {
    map.iter()
        .map(|(k, v)| (k.clone(), ScalarExpr::Const(v.clone())))
        .collect()
}

/// Substitute scalar parameters with constants inside a scalar
/// expression (partial evaluation of `Param` holes) — the
/// constant-valued special case of [`substitute_param_exprs_scalar`].
pub fn substitute_params_scalar(e: &ScalarExpr, map: &FxHashMap<Name, Value>) -> ScalarExpr {
    substitute_param_exprs_scalar(e, &const_exprs(map))
}

/// Substitute scalar parameters throughout a formula — the
/// constant-valued special case of [`substitute_param_exprs_formula`].
pub fn substitute_params_formula(f: &Formula, map: &FxHashMap<Name, Value>) -> Formula {
    substitute_param_exprs_formula(f, &const_exprs(map))
}

/// Substitute scalar parameters throughout a range expression (selector
/// arguments may mention parameters of an enclosing definition) — the
/// constant-valued special case of [`substitute_param_exprs_range`].
pub fn substitute_params_range(r: &RangeExpr, map: &FxHashMap<Name, Value>) -> RangeExpr {
    substitute_param_exprs_range(r, &const_exprs(map))
}

/// Collect every relation name referenced anywhere in a range
/// expression.
pub fn relation_names(range: &RangeExpr) -> FxHashSet<Name> {
    let mut out = FxHashSet::default();
    collect_names_range(range, &mut out);
    out
}

/// Collect every relation name referenced anywhere in a formula.
pub fn relation_names_formula(f: &Formula) -> FxHashSet<Name> {
    let mut out = FxHashSet::default();
    collect_names_formula(f, &mut out);
    out
}

fn collect_names_range(r: &RangeExpr, out: &mut FxHashSet<Name>) {
    match r {
        RangeExpr::Rel(n) => {
            out.insert(n.clone());
        }
        RangeExpr::Selected { base, .. } => collect_names_range(base, out),
        RangeExpr::Constructed { base, args, .. } => {
            collect_names_range(base, out);
            for a in args {
                collect_names_range(a, out);
            }
        }
        RangeExpr::SetFormer(sf) => {
            for b in &sf.branches {
                for (_, range) in &b.bindings {
                    collect_names_range(range, out);
                }
                collect_names_formula(&b.predicate, out);
            }
        }
    }
}

fn collect_names_formula(f: &Formula, out: &mut FxHashSet<Name>) {
    match f {
        Formula::True | Formula::False | Formula::Cmp(..) => {}
        Formula::And(a, b) | Formula::Or(a, b) => {
            collect_names_formula(a, out);
            collect_names_formula(b, out);
        }
        Formula::Not(inner) => collect_names_formula(inner, out),
        Formula::Some(_, r, body) | Formula::All(_, r, body) => {
            collect_names_range(r, out);
            collect_names_formula(body, out);
        }
        Formula::Member(_, r) | Formula::TupleIn(_, r) => collect_names_range(r, out),
    }
}

/// Collect every selector name applied anywhere in a range expression.
/// Together with [`relation_names`] this drives the overlay's
/// decorrelation-cache shareability check: a selector *body* may
/// resolve relation names of its own, so callers expand the collected
/// selectors' predicates transitively.
pub fn selector_names(range: &RangeExpr) -> FxHashSet<Name> {
    let mut out = FxHashSet::default();
    collect_selectors_range(range, &mut out);
    out
}

/// Collect every selector name applied anywhere in a formula — see
/// [`selector_names`].
pub fn selector_names_formula(f: &Formula) -> FxHashSet<Name> {
    let mut out = FxHashSet::default();
    collect_selectors_formula(f, &mut out);
    out
}

fn collect_selectors_range(r: &RangeExpr, out: &mut FxHashSet<Name>) {
    match r {
        RangeExpr::Rel(_) => {}
        RangeExpr::Selected { base, selector, .. } => {
            out.insert(selector.clone());
            collect_selectors_range(base, out);
        }
        RangeExpr::Constructed { base, args, .. } => {
            collect_selectors_range(base, out);
            for a in args {
                collect_selectors_range(a, out);
            }
        }
        RangeExpr::SetFormer(sf) => {
            for b in &sf.branches {
                for (_, range) in &b.bindings {
                    collect_selectors_range(range, out);
                }
                collect_selectors_formula(&b.predicate, out);
            }
        }
    }
}

fn collect_selectors_formula(f: &Formula, out: &mut FxHashSet<Name>) {
    match f {
        Formula::True | Formula::False | Formula::Cmp(..) => {}
        Formula::And(a, b) | Formula::Or(a, b) => {
            collect_selectors_formula(a, out);
            collect_selectors_formula(b, out);
        }
        Formula::Not(inner) => collect_selectors_formula(inner, out),
        Formula::Some(_, r, body) | Formula::All(_, r, body) => {
            collect_selectors_range(r, out);
            collect_selectors_formula(body, out);
        }
        Formula::Member(_, r) | Formula::TupleIn(_, r) => collect_selectors_range(r, out),
    }
}

/// Collect every scalar-parameter name (`ScalarExpr::Param` leaf)
/// referenced anywhere in a range expression — comparison operands,
/// selector arguments, constructor scalar arguments, set-former
/// targets, and tuple-membership expressions, through arithmetic.
/// Drives the solver's snapshot-universe capture: every parameter a
/// frozen evaluation could resolve is pre-fetched from the base
/// catalog.
pub fn param_names(range: &RangeExpr) -> FxHashSet<Name> {
    let mut out = FxHashSet::default();
    collect_params_range(range, &mut out);
    out
}

/// Collect every scalar-parameter name referenced anywhere in a
/// formula — see [`param_names`].
pub fn param_names_formula(f: &Formula) -> FxHashSet<Name> {
    let mut out = FxHashSet::default();
    collect_params_formula(f, &mut out);
    out
}

fn collect_params_scalar(e: &ScalarExpr, out: &mut FxHashSet<Name>) {
    match e {
        ScalarExpr::Const(_) | ScalarExpr::Attr(..) => {}
        ScalarExpr::Param(n) => {
            out.insert(n.clone());
        }
        ScalarExpr::Arith(a, _, b) => {
            collect_params_scalar(a, out);
            collect_params_scalar(b, out);
        }
    }
}

fn collect_params_range(r: &RangeExpr, out: &mut FxHashSet<Name>) {
    match r {
        RangeExpr::Rel(_) => {}
        RangeExpr::Selected { base, args, .. } => {
            collect_params_range(base, out);
            for a in args {
                collect_params_scalar(a, out);
            }
        }
        RangeExpr::Constructed {
            base,
            args,
            scalar_args,
            ..
        } => {
            collect_params_range(base, out);
            for a in args {
                collect_params_range(a, out);
            }
            for s in scalar_args {
                collect_params_scalar(s, out);
            }
        }
        RangeExpr::SetFormer(sf) => {
            for b in &sf.branches {
                if let Target::Tuple(exprs) = &b.target {
                    for e in exprs {
                        collect_params_scalar(e, out);
                    }
                }
                for (_, range) in &b.bindings {
                    collect_params_range(range, out);
                }
                collect_params_formula(&b.predicate, out);
            }
        }
    }
}

fn collect_params_formula(f: &Formula, out: &mut FxHashSet<Name>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Cmp(a, _, b) => {
            collect_params_scalar(a, out);
            collect_params_scalar(b, out);
        }
        Formula::And(a, b) | Formula::Or(a, b) => {
            collect_params_formula(a, out);
            collect_params_formula(b, out);
        }
        Formula::Not(inner) => collect_params_formula(inner, out),
        Formula::Some(_, r, body) | Formula::All(_, r, body) => {
            collect_params_range(r, out);
            collect_params_formula(body, out);
        }
        Formula::Member(_, r) => collect_params_range(r, out),
        Formula::TupleIn(exprs, r) => {
            for e in exprs {
                collect_params_scalar(e, out);
            }
            collect_params_range(r, out);
        }
    }
}

/// Collect every constructor application (`Constructed` node) in a range
/// expression, in pre-order.
pub fn collect_constructed(range: &RangeExpr) -> Vec<RangeExpr> {
    let mut out = Vec::new();
    collect_constructed_range(range, &mut out);
    out
}

fn collect_constructed_range(r: &RangeExpr, out: &mut Vec<RangeExpr>) {
    match r {
        RangeExpr::Rel(_) => {}
        RangeExpr::Selected { base, .. } => collect_constructed_range(base, out),
        RangeExpr::Constructed { base, args, .. } => {
            out.push(r.clone());
            collect_constructed_range(base, out);
            for a in args {
                collect_constructed_range(a, out);
            }
        }
        RangeExpr::SetFormer(sf) => {
            for b in &sf.branches {
                for (_, range) in &b.bindings {
                    collect_constructed_range(range, out);
                }
                collect_constructed_formula(&b.predicate, out);
            }
        }
    }
}

fn collect_constructed_formula(f: &Formula, out: &mut Vec<RangeExpr>) {
    match f {
        Formula::True | Formula::False | Formula::Cmp(..) => {}
        Formula::And(a, b) | Formula::Or(a, b) => {
            collect_constructed_formula(a, out);
            collect_constructed_formula(b, out);
        }
        Formula::Not(inner) => collect_constructed_formula(inner, out),
        Formula::Some(_, r, body) | Formula::All(_, r, body) => {
            collect_constructed_range(r, out);
            collect_constructed_formula(body, out);
        }
        Formula::Member(_, r) | Formula::TupleIn(_, r) => collect_constructed_range(r, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use crate::builder::*;

    #[test]
    fn param_names_cover_every_scalar_position() {
        // Params hide in: a comparison operand (through arithmetic), a
        // selector argument, a quantifier body, a tuple target, and a
        // TupleIn expression list.
        let range = set_former(vec![Branch::projecting(
            vec![add(attr("r", "a"), param("p_target"))],
            vec![
                ("r".into(), rel("R").select("vis", vec![param("p_selarg")])),
                ("s".into(), rel("S")),
            ],
            eq(attr("r", "a"), add(cnst(1i64), param("p_cmp")))
                .and(some(
                    "x",
                    rel("T"),
                    tuple_in(vec![param("p_tuplein")], rel("U")),
                ))
                .and(not(eq(attr("s", "b"), param("p_neg")))),
        )]);
        let names = param_names(&range);
        for expected in ["p_target", "p_selarg", "p_cmp", "p_tuplein", "p_neg"] {
            assert!(names.contains(expected), "missing {expected}: {names:?}");
        }
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn nnf_pushes_through_connectives() {
        // NOT (a = 1 AND SOME x IN R (TRUE))
        let f = Formula::Not(Box::new(eq(attr("r", "a"), cnst(1i64)).and(some(
            "x",
            rel("R"),
            tru(),
        ))));
        let nnf = to_nnf(f);
        // ⇒ a # 1 OR ALL x IN R (FALSE)
        match nnf {
            Formula::Or(l, r) => {
                assert!(matches!(*l, Formula::Cmp(_, CmpOp::Ne, _)));
                assert!(matches!(*r, Formula::All(..)));
            }
            other => panic!("expected Or, got {other}"),
        }
    }

    #[test]
    fn nnf_double_negation() {
        let f = Formula::Not(Box::new(Formula::Not(Box::new(tru()))));
        assert_eq!(to_nnf(f), Formula::True);
    }

    #[test]
    fn nnf_quantifier_duality() {
        let f = Formula::Not(Box::new(all("x", rel("R"), eq(attr("x", "a"), cnst(1i64)))));
        match to_nnf(f) {
            Formula::Some(_, _, body) => {
                assert!(matches!(*body, Formula::Cmp(_, CmpOp::Ne, _)));
            }
            other => panic!("expected Some, got {other}"),
        }
    }

    #[test]
    fn nnf_keeps_membership_literals() {
        let f = Formula::Not(Box::new(member("r", rel("R"))));
        assert!(matches!(to_nnf(f), Formula::Not(_)));
    }

    #[test]
    fn monotone_after_nnf_for_positive_exprs() {
        use crate::positivity::{check_formula, Tracked};
        // NOT NOT (r IN Rec) is positive; after NNF no NOT remains.
        let f = Formula::Not(Box::new(Formula::Not(Box::new(member("r", rel("Rec"))))));
        assert!(check_formula(&f, &Tracked::name("Rec")).is_empty());
        let nnf = to_nnf(f);
        assert_eq!(nnf, member("r", rel("Rec")));
    }

    #[test]
    fn substitute_rel_replaces_names() {
        let mut map = FxHashMap::default();
        map.insert("Rel".to_string(), rel("Infront"));
        let body = set_former(vec![Branch::projecting(
            vec![attr("f", "front")],
            vec![
                ("f".into(), rel("Rel")),
                (
                    "b".into(),
                    rel("Rel").construct("ahead", vec![rel("Ontop")]),
                ),
            ],
            member("f", rel("Rel")),
        )]);
        let out = substitute_rel(&body, &map);
        let names = relation_names(&out);
        assert!(names.contains("Infront"));
        assert!(names.contains("Ontop"));
        assert!(!names.contains("Rel"));
    }

    #[test]
    fn substitute_params_makes_constants() {
        let mut map = FxHashMap::default();
        map.insert("Obj".to_string(), dc_value::Value::str("table"));
        let f = eq(attr("r", "front"), param("Obj"));
        let out = substitute_params_formula(&f, &map);
        assert_eq!(out, eq(attr("r", "front"), cnst("table")));
        // Unknown params survive untouched.
        let g = eq(param("Other"), cnst(1i64));
        assert_eq!(substitute_params_formula(&g, &map), g);
    }

    #[test]
    fn substitute_params_in_arith_and_targets() {
        let mut map = FxHashMap::default();
        map.insert("K".to_string(), dc_value::Value::Int(5));
        let r = set_former(vec![Branch::projecting(
            vec![add(param("K"), attr("r", "n"))],
            vec![("r".into(), rel("N"))],
            lt(attr("r", "n"), param("K")),
        )]);
        let out = substitute_params_range(&r, &map);
        let shown = out.to_string();
        assert!(shown.contains('5'));
        assert!(!shown.contains('K'));
    }

    #[test]
    fn substitute_param_exprs_fills_holes_with_expressions() {
        let mut map = FxHashMap::default();
        map.insert("B".to_string(), attr("r", "front"));
        // Selector predicate `t.base = B` becomes the correlated filter
        // `t.base = r.front`.
        let f = eq(attr("t", "base"), param("B"));
        let out = substitute_param_exprs_formula(&f, &map);
        assert_eq!(out, eq(attr("t", "base"), attr("r", "front")));
        // Nested ranges (selector args, set-former predicates) are
        // reached too; unknown params survive untouched.
        let g = some(
            "x",
            rel("R").select("s", vec![param("B"), param("Other")]),
            lt(param("B"), cnst(3i64)),
        );
        let out = substitute_param_exprs_formula(&g, &map);
        let shown = out.to_string();
        assert!(shown.contains("r.front"));
        assert!(shown.contains("Other"));
        assert!(!shown.contains("s(B"));
    }

    #[test]
    fn bound_vars_collected_from_quantifiers_and_set_formers() {
        let f = some(
            "x",
            set_former(vec![Branch::each("y", rel("R"), tru())]),
            all("z", rel("S"), tru()),
        );
        let mut out = FxHashSet::default();
        bound_vars_formula(&f, &mut out);
        for v in ["x", "y", "z"] {
            assert!(out.contains(v), "{v}");
        }
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn relation_names_finds_all() {
        let e = set_former(vec![Branch::each(
            "r",
            rel("A").select("s", vec![]),
            some("x", rel("B"), all("y", rel("C"), member("y", rel("D")))),
        )]);
        let names = relation_names(&e);
        for n in ["A", "B", "C", "D"] {
            assert!(names.contains(n), "{n}");
        }
    }

    #[test]
    fn collect_constructed_finds_nested() {
        let e = set_former(vec![Branch::each(
            "r",
            rel("A").construct("c1", vec![rel("B").construct("c2", vec![])]),
            tru(),
        )]);
        let apps = collect_constructed(&e);
        assert_eq!(apps.len(), 2);
        assert!(matches!(
            &apps[0],
            RangeExpr::Constructed { constructor, .. } if constructor == "c1"
        ));
        assert!(matches!(
            &apps[1],
            RangeExpr::Constructed { constructor, .. } if constructor == "c2"
        ));
    }
}
