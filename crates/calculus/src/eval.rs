//! The evaluator for the calculus.
//!
//! Two execution paths coexist:
//!
//! * **Reference nested loops** ([`Evaluator::force_nested_loop`]) — the
//!   executable *definition* of expression meaning: every set-former
//!   branch enumerates the cross product of its ranges and filters by
//!   the predicate. The optimizer's plans (`dc-optimizer`) and the
//!   index path below are differentially tested against it.
//! * **Index-nested-loop joins** (the default) — branches whose
//!   predicates carry conjunctive equality atoms are executed through
//!   [`crate::joinplan`] plans: one range is scanned, the others are
//!   probed through [`dc_index::HashIndex`]es keyed on the equality
//!   columns, so work is proportional to *matching* combinations rather
//!   than all combinations. The full predicate is re-checked on every
//!   surviving combination, so both paths produce identical relations
//!   and identical errors on every combination they both evaluate.
//!   The one deliberate divergence, shared with every
//!   predicate-pushdown engine: a runtime error (division by zero,
//!   cross-type comparison) hiding in a conjunct of a combination that
//!   an equality key already rejects is never raised on the index
//!   path, because the rejected combination is skipped outright.
//!   Equality atoms themselves never mask their own errors — keys that
//!   cannot be realised safely (type-mismatched, unresolvable) are
//!   demoted back to the residual.
//! * **Quantifier probes** — quantified subformulas
//!   (`SOME x IN R: x.a = r.b AND …`, and the `ALL` dual) whose bodies
//!   carry top-level equality atoms on the quantified variable are
//!   decided through a [`dc_index::HashIndex`] existence probe instead
//!   of a range scan: only bucket matches get the (full) body
//!   re-check, so selector-style predicates cost O(matches) per outer
//!   combination rather than O(|R|). The divergence policy above
//!   extends unchanged: an error hiding in the body of a tuple the
//!   equality key already rejects is never raised, because that tuple
//!   is skipped outright. [`Evaluator::force_nested_loop`] disables
//!   quantifier probes too.

use std::sync::Arc;

use dc_index::{HashIndex, RelationStats};
use dc_relation::Relation;
use dc_value::{Attribute, Domain, FxHashMap, FxHashSet, Schema, Tuple, Value};

use crate::ast::{Branch, Formula, RangeExpr, ScalarExpr, SetFormer, Target, Var};
use crate::env::Catalog;
use crate::error::EvalError;
use crate::joinplan::{self, Access, BranchPlan, KeySource};

/// A bound tuple variable: name, current tuple, and the schema used to
/// resolve `var.attr` references.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Variable name.
    pub var: Var,
    /// Bound tuple.
    pub tuple: Tuple,
    /// Schema of the range the variable iterates over.
    pub schema: Schema,
}

/// Infer the base domain of a value (for target-schema synthesis).
pub fn value_domain(v: &Value) -> Domain {
    match v {
        Value::Int(_) => Domain::Int,
        Value::Card(_) => Domain::Card,
        Value::Str(_) => Domain::Str,
        Value::Bool(_) => Domain::Bool,
    }
}

/// The nested-loop reference evaluator.
///
/// An `Evaluator` caches binding-free range values (e.g. a base relation
/// referenced inside a quantifier) for the duration of its lifetime;
/// create a fresh evaluator whenever the underlying relations may have
/// changed (the fixpoint engine creates one per iteration).
pub struct Evaluator<'a> {
    catalog: &'a dyn Catalog,
    /// Stack of selector-application parameter frames.
    param_frames: Vec<FxHashMap<String, Value>>,
    /// Cache of binding-free range values.
    range_cache: FxHashMap<RangeExpr, Relation>,
    /// Cache of indexes built over binding-free ranges.
    index_cache: FxHashMap<(RangeExpr, Vec<usize>), Arc<HashIndex>>,
    /// Cache of statistics collected over binding-free ranges.
    stats_cache: FxHashMap<RangeExpr, RelationStats>,
    /// Per-plan-depth probe-key buffers, reused across probes.
    probe_scratch: Vec<Vec<Value>>,
    /// Disable the index-nested-loop path (reference semantics).
    nested_loop_only: bool,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator over a catalog.
    pub fn new(catalog: &'a dyn Catalog) -> Evaluator<'a> {
        Evaluator {
            catalog,
            param_frames: Vec::new(),
            range_cache: FxHashMap::default(),
            index_cache: FxHashMap::default(),
            stats_cache: FxHashMap::default(),
            probe_scratch: Vec::new(),
            nested_loop_only: false,
        }
    }

    /// Force the reference nested-loop path for every branch (no join
    /// planning, no index probes). Used by differential tests and as
    /// the measured pre-optimization baseline.
    pub fn force_nested_loop(mut self) -> Evaluator<'a> {
        self.nested_loop_only = true;
        self
    }

    /// Evaluate a closed range expression (a query).
    pub fn eval(&mut self, range: &RangeExpr) -> Result<Relation, EvalError> {
        let mut bindings = Vec::new();
        self.eval_range(range, &mut bindings)
    }

    /// Evaluate a range expression under the given bindings.
    pub fn eval_range(
        &mut self,
        range: &RangeExpr,
        bindings: &mut Vec<Binding>,
    ) -> Result<Relation, EvalError> {
        let cacheable = self.param_frames.is_empty() && is_binding_free(range);
        if cacheable {
            if let Some(hit) = self.range_cache.get(range) {
                return Ok(hit.clone());
            }
        }
        let out = self.eval_range_uncached(range, bindings)?;
        if cacheable {
            self.range_cache.insert(range.clone(), out.clone());
        }
        Ok(out)
    }

    fn eval_range_uncached(
        &mut self,
        range: &RangeExpr,
        bindings: &mut Vec<Binding>,
    ) -> Result<Relation, EvalError> {
        match range {
            // An owned COW handle sharing the catalog's storage — a
            // pointer bump, not a tuple-set copy.
            RangeExpr::Rel(name) => self.catalog.relation(name),
            RangeExpr::Selected {
                base,
                selector,
                args,
            } => {
                let base_rel = self.eval_range(base, bindings)?;
                self.apply_selector(base_rel, selector, args, bindings)
            }
            RangeExpr::Constructed {
                base,
                constructor,
                args,
                scalar_args,
            } => {
                let base_rel = self.eval_range(base, bindings)?;
                let mut arg_rels = Vec::with_capacity(args.len());
                for a in args {
                    arg_rels.push(self.eval_range(a, bindings)?);
                }
                let mut scalars = Vec::with_capacity(scalar_args.len());
                for s in scalar_args {
                    scalars.push(self.eval_scalar(s, bindings)?);
                }
                self.catalog
                    .apply_constructor(base_rel, constructor, arg_rels, scalars)
            }
            RangeExpr::SetFormer(sf) => self.eval_set_former(sf, bindings),
        }
    }

    /// Selector application `base[sel(args)]`: filter `base` by the
    /// selector predicate with the element variable bound to each tuple
    /// and the formal parameters bound to the evaluated arguments.
    pub fn apply_selector(
        &mut self,
        base: Relation,
        selector: &str,
        args: &[ScalarExpr],
        bindings: &mut Vec<Binding>,
    ) -> Result<Relation, EvalError> {
        let def = self.catalog.selector(selector)?.clone();
        if args.len() != def.params.len() {
            return Err(EvalError::ArityMismatch {
                name: def.name.clone(),
                expected: def.params.len(),
                actual: args.len(),
            });
        }
        let mut frame = FxHashMap::default();
        for ((pname, pdom), arg) in def.params.iter().zip(args) {
            let v = self.eval_scalar(arg, bindings)?;
            pdom.check(&v)?;
            frame.insert(pname.clone(), v);
        }
        self.param_frames.push(frame);
        // The selector body is evaluated in its own scope: only the
        // element variable is visible (plus catalog relations).
        let mut inner: Vec<Binding> = Vec::with_capacity(1);
        let mut out = Relation::new(base.schema().clone());
        let result: Result<(), EvalError> = (|| {
            for t in base.iter() {
                inner.push(Binding {
                    var: def.element_var.clone(),
                    tuple: t.clone(),
                    schema: base.schema().clone(),
                });
                let keep = self.eval_formula(&def.predicate, &mut inner);
                inner.pop();
                if keep? {
                    out.insert_unchecked(t.clone())?;
                }
            }
            Ok(())
        })();
        self.param_frames.pop();
        result?;
        Ok(out)
    }

    fn eval_set_former(
        &mut self,
        sf: &SetFormer,
        bindings: &mut Vec<Binding>,
    ) -> Result<Relation, EvalError> {
        if sf.branches.is_empty() {
            return Err(EvalError::Other("set former with no branches".into()));
        }
        let mut result: Option<Relation> = None;
        for branch in &sf.branches {
            // Ranges are evaluated in the enclosing scope, once per
            // branch (not per combination).
            let mut ranges = Vec::with_capacity(branch.bindings.len());
            for (_, r) in &branch.bindings {
                ranges.push(self.eval_range(r, bindings)?);
            }
            let schema = self.branch_schema(branch, &ranges, bindings)?;
            let out = match &mut result {
                None => {
                    result = Some(Relation::new(schema));
                    result.as_mut().unwrap()
                }
                Some(rel) => {
                    if !rel.schema().union_compatible(&schema) {
                        return Err(EvalError::Type(dc_value::TypeError::SchemaMismatch {
                            context: "set-former branches are not union-compatible".into(),
                        }));
                    }
                    rel
                }
            };
            // `out` cannot be borrowed across the recursive loop that
            // needs `&mut self`; collect into a scratch relation.
            let mut scratch = Relation::new(out.schema().clone());
            self.eval_branch(branch, &ranges, bindings, &mut scratch)?;
            dc_relation::algebra::union_into(out, &scratch)?;
        }
        Ok(result.unwrap())
    }

    /// Evaluate one branch: index-nested-loop when the predicate offers
    /// equality atoms, reference nested loops otherwise.
    fn eval_branch(
        &mut self,
        branch: &Branch,
        ranges: &[Relation],
        bindings: &mut Vec<Binding>,
        out: &mut Relation,
    ) -> Result<(), EvalError> {
        // Zero combinations — both paths would emit nothing.
        if ranges.iter().any(Relation::is_empty) && !branch.bindings.is_empty() {
            return Ok(());
        }
        if !self.nested_loop_only && !branch.bindings.is_empty() {
            // Cheap AST walk first: atom-free branches go straight to
            // the reference loop without paying any stats scan.
            let atoms = joinplan::extract_eq_atoms(branch);
            if !atoms.is_empty() {
                let schemas: Vec<&Schema> = ranges.iter().map(Relation::schema).collect();
                // Distinct-value statistics are only worth obtaining
                // for ranges the planner may probe — and even for
                // those, catalogs that maintain statistics next to
                // their indexes (the fixpoint solver, the database)
                // serve them in O(arity), so the O(|R|) collection
                // pass only runs for anonymous, non-cacheable ranges.
                let probed: FxHashSet<usize> = atoms.iter().map(|a| a.position).collect();
                let stats: Vec<RelationStats> = ranges
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        if probed.contains(&i) {
                            self.range_stats(&branch.bindings[i].1, r)
                        } else {
                            RelationStats {
                                cardinality: r.len(),
                                distinct: Vec::new(),
                            }
                        }
                    })
                    .collect();
                let plan = joinplan::plan_branch(branch, &schemas, &stats);
                if plan.has_probe() {
                    if let Some(steps) = self.compile_plan(branch, &plan, ranges, bindings) {
                        return self.exec_plan(branch, &steps, ranges, 0, bindings, out);
                    }
                }
            }
        }
        self.loop_branch(branch, ranges, 0, bindings, out)
    }

    /// Lower a logical plan to executable steps: resolve attribute
    /// positions, evaluate free key sources to values, bind probe
    /// indexes. Atoms that cannot be realised safely — unknown
    /// attributes, unresolvable parameters/outer variables, or keys
    /// whose base type differs from the probed column (where hash
    /// equality and `=` semantics diverge) — are demoted back to the
    /// residual predicate. Returns `None` when no probe survives.
    fn compile_plan(
        &mut self,
        branch: &Branch,
        plan: &BranchPlan,
        ranges: &[Relation],
        bindings: &Vec<Binding>,
    ) -> Option<Vec<CompiledStep>> {
        let base_slot = bindings.len();
        let mut slot_of = vec![usize::MAX; branch.bindings.len()];
        let mut steps = Vec::with_capacity(plan.steps.len());
        let mut any_probe = false;
        for (i, step) in plan.steps.iter().enumerate() {
            slot_of[step.position] = base_slot + i;
            let access = match &step.access {
                Access::Scan => CompiledAccess::Scan,
                Access::Probe(atoms) => {
                    let schema = ranges[step.position].schema();
                    let mut positions = Vec::with_capacity(atoms.len());
                    let mut keys = Vec::with_capacity(atoms.len());
                    for atom in atoms {
                        let Ok(probed_pos) = schema.position(&atom.attr) else {
                            continue;
                        };
                        let probed_base = schema.domain(probed_pos).base();
                        match &atom.source {
                            KeySource::Free(expr) => {
                                let Ok(v) = self.eval_scalar(expr, bindings) else {
                                    continue;
                                };
                                if value_domain(&v) != probed_base {
                                    continue;
                                }
                                positions.push(probed_pos);
                                keys.push(CompiledKey::Fixed(v));
                            }
                            KeySource::Binding { position, attr } => {
                                let source_schema = ranges[*position].schema();
                                let Ok(source_pos) = source_schema.position(attr) else {
                                    continue;
                                };
                                if source_schema.domain(source_pos).base() != probed_base {
                                    continue;
                                }
                                positions.push(probed_pos);
                                keys.push(CompiledKey::FromBinding {
                                    slot: slot_of[*position],
                                    attr_pos: source_pos,
                                });
                            }
                        }
                    }
                    if keys.is_empty() {
                        CompiledAccess::Scan
                    } else {
                        any_probe = true;
                        let index = self.obtain_index(
                            &branch.bindings[step.position].1,
                            &ranges[step.position],
                            &positions,
                        );
                        CompiledAccess::Probe { index, keys }
                    }
                }
            };
            steps.push(CompiledStep {
                position: step.position,
                access,
            });
        }
        any_probe.then_some(steps)
    }

    /// Find or build a hash index over `rel` on `positions`. Catalogs
    /// that maintain indexes (the fixpoint solver) are consulted first
    /// for named ranges; binding-free ranges get an evaluator-lifetime
    /// cache; anything else builds a throwaway index (still one O(|rel|)
    /// pass — the same cost as the single scan it replaces).
    fn obtain_index(
        &mut self,
        range: &RangeExpr,
        rel: &Relation,
        positions: &[usize],
    ) -> Arc<HashIndex> {
        if let RangeExpr::Rel(name) = range {
            if let Some(idx) = self.catalog.index(name, positions) {
                debug_assert_eq!(idx.len(), rel.len(), "catalog index out of sync for {name}");
                return idx;
            }
        }
        if self.param_frames.is_empty() && is_binding_free(range) {
            let key = (range.clone(), positions.to_vec());
            if let Some(hit) = self.index_cache.get(&key) {
                return hit.clone();
            }
            let idx = Arc::new(HashIndex::build(rel, positions.to_vec()));
            self.index_cache.insert(key, idx.clone());
            return idx;
        }
        Arc::new(HashIndex::build(rel, positions.to_vec()))
    }

    /// Statistics for a probed range. Catalogs that maintain statistics
    /// incrementally (next to their indexes) answer in O(arity);
    /// binding-free ranges get an evaluator-lifetime cache; anything
    /// else pays the one-pass collection.
    fn range_stats(&mut self, range: &RangeExpr, rel: &Relation) -> RelationStats {
        if let RangeExpr::Rel(name) = range {
            if let Some(s) = self.catalog.stats(name) {
                debug_assert_eq!(
                    s.cardinality,
                    rel.len(),
                    "catalog stats out of sync for {name}"
                );
                return (*s).clone();
            }
        }
        if self.param_frames.is_empty() && is_binding_free(range) {
            if let Some(hit) = self.stats_cache.get(range) {
                return hit.clone();
            }
            let s = RelationStats::collect(rel);
            self.stats_cache.insert(range.clone(), s.clone());
            return s;
        }
        RelationStats::collect(rel)
    }

    /// Try to decide a quantified subformula through an index existence
    /// probe instead of a scan. `Ok(None)` means "not probe-able —
    /// fall back to the reference scan"; `Ok(Some(b))` is the decided
    /// truth value.
    ///
    /// A `SOME` body carrying equality atoms `var.attr = key` (with
    /// `key` free of `var`, see [`joinplan::extract_quant_atoms`]) only
    /// has witnesses inside the probed bucket, so the residual pass
    /// touches bucket matches instead of the whole range. For `ALL`,
    /// any tuple *outside* the bucket falsifies the equality conjunct
    /// and with it the body, so the quantifier holds only if the
    /// bucket covers the whole range — checked by cardinality before
    /// the residual pass over the bucket.
    ///
    /// Demotion rules mirror [`Evaluator::compile_plan`]: keys that are
    /// unresolvable or whose base type differs from the probed column
    /// drop out, and if none survive the scan fallback reproduces
    /// reference semantics (including error semantics) exactly. Probes
    /// are only attempted where the index amortises — named relations
    /// (catalog-maintained indexes) and binding-free ranges (evaluator
    /// cache); a throwaway index per evaluation would cost the same
    /// pass as the scan it replaces.
    fn quant_probe(
        &mut self,
        var: &Var,
        range: &RangeExpr,
        rel: &Relation,
        body: &Formula,
        bindings: &mut Vec<Binding>,
        existential: bool,
    ) -> Result<Option<bool>, EvalError> {
        if self.nested_loop_only || rel.is_empty() {
            return Ok(None);
        }
        let cacheable = self.param_frames.is_empty() && is_binding_free(range);
        if !cacheable && !matches!(range, RangeExpr::Rel(_)) {
            return Ok(None);
        }
        let atoms = joinplan::extract_quant_atoms(var, body);
        if atoms.is_empty() {
            return Ok(None);
        }
        let schema = rel.schema();
        let mut positions = Vec::with_capacity(atoms.len());
        let mut key = Vec::with_capacity(atoms.len());
        for atom in &atoms {
            let Ok(pos) = schema.position(&atom.attr) else {
                continue;
            };
            let Ok(v) = self.eval_scalar(&atom.key, bindings) else {
                continue;
            };
            if value_domain(&v) != schema.domain(pos).base() {
                continue;
            }
            positions.push(pos);
            key.push(v);
        }
        if positions.is_empty() {
            return Ok(None);
        }
        let index = if cacheable {
            // Catalog-maintained or evaluator-cached — `obtain_index`
            // never builds a throwaway on this path.
            self.obtain_index(range, rel, &positions)
        } else {
            // Named range under a parameter frame: only a
            // catalog-maintained index amortises; building one per
            // evaluation would cost the scan it replaces, so fall back.
            let RangeExpr::Rel(name) = range else {
                unreachable!("checked above");
            };
            match self.catalog.index(name, &positions) {
                Some(idx) => {
                    debug_assert_eq!(idx.len(), rel.len(), "catalog index out of sync for {name}");
                    idx
                }
                None => return Ok(None),
            }
        };
        let hits = index.probe_slice(&key);
        if !existential && hits.len() != rel.len() {
            return Ok(Some(false));
        }
        let schema = rel.schema().clone();
        let slot = bindings.len();
        let mut pushed = false;
        for t in hits {
            if pushed {
                bindings[slot].tuple = t.clone();
            } else {
                bindings.push(Binding {
                    var: var.clone(),
                    tuple: t.clone(),
                    schema: schema.clone(),
                });
                pushed = true;
            }
            let r = self.eval_formula(body, bindings);
            match r {
                Err(e) => {
                    bindings.truncate(slot);
                    return Err(e);
                }
                Ok(b) if b == existential => {
                    bindings.truncate(slot);
                    return Ok(Some(existential));
                }
                Ok(_) => {}
            }
        }
        bindings.truncate(slot);
        Ok(Some(!existential))
    }

    /// Run the compiled steps depth-first. Each step reuses one binding
    /// slot across its whole iteration (one `Var`/`Schema` clone per
    /// step instead of per combination); probes touch only bucket
    /// matches.
    fn exec_plan(
        &mut self,
        branch: &Branch,
        steps: &[CompiledStep],
        ranges: &[Relation],
        depth: usize,
        bindings: &mut Vec<Binding>,
        out: &mut Relation,
    ) -> Result<(), EvalError> {
        if depth == steps.len() {
            return self.emit_if_selected(branch, bindings, out);
        }
        let step = &steps[depth];
        let (var, _) = &branch.bindings[step.position];
        let rel = &ranges[step.position];
        let slot = bindings.len();
        match &step.access {
            CompiledAccess::Scan => {
                let mut pushed = false;
                for t in rel.iter() {
                    if pushed {
                        bindings[slot].tuple = t.clone();
                    } else {
                        bindings.push(Binding {
                            var: var.clone(),
                            tuple: t.clone(),
                            schema: rel.schema().clone(),
                        });
                        pushed = true;
                    }
                    let r = self.exec_plan(branch, steps, ranges, depth + 1, bindings, out);
                    if r.is_err() {
                        bindings.truncate(slot);
                        return r;
                    }
                }
                bindings.truncate(slot);
            }
            CompiledAccess::Probe { index, keys } => {
                // Reuse one key buffer per plan depth across all of
                // this step's invocations — no allocation per probe
                // (value clones are `Arc` bumps / plain copies).
                if self.probe_scratch.len() <= depth {
                    self.probe_scratch.resize_with(depth + 1, Vec::new);
                }
                let mut key_vals = std::mem::take(&mut self.probe_scratch[depth]);
                key_vals.clear();
                for k in keys {
                    key_vals.push(match k {
                        CompiledKey::Fixed(v) => v.clone(),
                        CompiledKey::FromBinding { slot, attr_pos } => {
                            bindings[*slot].tuple.get(*attr_pos).clone()
                        }
                    });
                }
                let hits = index.probe_slice(&key_vals);
                self.probe_scratch[depth] = key_vals;
                let mut pushed = false;
                for t in hits {
                    if pushed {
                        bindings[slot].tuple = t.clone();
                    } else {
                        bindings.push(Binding {
                            var: var.clone(),
                            tuple: t.clone(),
                            schema: rel.schema().clone(),
                        });
                        pushed = true;
                    }
                    let r = self.exec_plan(branch, steps, ranges, depth + 1, bindings, out);
                    if r.is_err() {
                        bindings.truncate(slot);
                        return r;
                    }
                }
                bindings.truncate(slot);
            }
        }
        Ok(())
    }

    /// Leaf of both executors: check the (full) predicate, then emit the
    /// target tuple.
    fn emit_if_selected(
        &mut self,
        branch: &Branch,
        bindings: &mut Vec<Binding>,
        out: &mut Relation,
    ) -> Result<(), EvalError> {
        if self.eval_formula(&branch.predicate, bindings)? {
            let tuple = match &branch.target {
                Target::Var(v) => lookup(bindings, v)?.tuple.clone(),
                Target::Tuple(exprs) => {
                    let mut fields = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        fields.push(self.eval_scalar(e, bindings)?);
                    }
                    Tuple::new(fields)
                }
            };
            out.insert(tuple)?;
        }
        Ok(())
    }

    fn loop_branch(
        &mut self,
        branch: &Branch,
        ranges: &[Relation],
        depth: usize,
        bindings: &mut Vec<Binding>,
        out: &mut Relation,
    ) -> Result<(), EvalError> {
        if depth == branch.bindings.len() {
            return self.emit_if_selected(branch, bindings, out);
        }
        let (var, _) = &branch.bindings[depth];
        let rel = &ranges[depth];
        let schema = rel.schema().clone();
        for t in rel.iter() {
            bindings.push(Binding {
                var: var.clone(),
                tuple: t.clone(),
                schema: schema.clone(),
            });
            let r = self.loop_branch(branch, ranges, depth + 1, bindings, out);
            bindings.pop();
            r?;
        }
        Ok(())
    }

    /// Synthesise the output schema of a branch.
    fn branch_schema(
        &mut self,
        branch: &Branch,
        ranges: &[Relation],
        bindings: &Vec<Binding>,
    ) -> Result<Schema, EvalError> {
        match &branch.target {
            Target::Var(v) => {
                let idx = branch
                    .bindings
                    .iter()
                    .position(|(bv, _)| bv == v)
                    .ok_or_else(|| EvalError::UnboundVariable(v.clone()))?;
                Ok(ranges[idx].schema().clone())
            }
            Target::Tuple(exprs) => {
                let mut attrs: Vec<Attribute> = Vec::with_capacity(exprs.len());
                let mut used: FxHashSet<String> = FxHashSet::default();
                for (i, e) in exprs.iter().enumerate() {
                    let (name, domain) = self.target_field(e, branch, ranges, bindings, i)?;
                    let mut name = name;
                    while !used.insert(name.clone()) {
                        name.push('_');
                    }
                    attrs.push(Attribute::new(name, domain));
                }
                Ok(Schema::new(attrs))
            }
        }
    }

    fn target_field(
        &mut self,
        e: &ScalarExpr,
        branch: &Branch,
        ranges: &[Relation],
        bindings: &Vec<Binding>,
        i: usize,
    ) -> Result<(String, Domain), EvalError> {
        match e {
            ScalarExpr::Attr(v, attr) => {
                // Prefer the branch's own bindings; fall back to outer
                // bindings (correlated targets).
                if let Some(idx) = branch.bindings.iter().position(|(bv, _)| bv == v) {
                    let schema = ranges[idx].schema();
                    let pos = schema.position(attr)?;
                    Ok((attr.clone(), schema.domain(pos).base()))
                } else {
                    let b = lookup(bindings, v)?;
                    let pos = b.schema.position(attr)?;
                    Ok((attr.clone(), b.schema.domain(pos).base()))
                }
            }
            ScalarExpr::Const(v) => Ok((format!("f{i}"), value_domain(v))),
            ScalarExpr::Param(p) => {
                let v = self.resolve_param(p)?;
                Ok((p.clone(), value_domain(&v)))
            }
            ScalarExpr::Arith(l, _, _) => {
                let (_, d) = self.target_field(l, branch, ranges, bindings, i)?;
                Ok((format!("f{i}"), d))
            }
        }
    }

    /// Evaluate a formula under the given bindings.
    pub fn eval_formula(
        &mut self,
        f: &Formula,
        bindings: &mut Vec<Binding>,
    ) -> Result<bool, EvalError> {
        match f {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Cmp(l, op, r) => {
                let lv = self.eval_scalar(l, bindings)?;
                let rv = self.eval_scalar(r, bindings)?;
                let ord = lv
                    .try_cmp(&rv)
                    .ok_or_else(|| EvalError::CrossTypeComparison {
                        lhs: lv.to_string(),
                        rhs: rv.to_string(),
                    })?;
                Ok(op.eval(ord))
            }
            Formula::And(a, b) => {
                Ok(self.eval_formula(a, bindings)? && self.eval_formula(b, bindings)?)
            }
            Formula::Or(a, b) => {
                Ok(self.eval_formula(a, bindings)? || self.eval_formula(b, bindings)?)
            }
            Formula::Not(inner) => Ok(!self.eval_formula(inner, bindings)?),
            Formula::Some(v, range, body) => {
                let rel = self.eval_range(range, bindings)?;
                if let Some(decided) = self.quant_probe(v, range, &rel, body, bindings, true)? {
                    return Ok(decided);
                }
                let schema = rel.schema().clone();
                for t in rel.iter() {
                    bindings.push(Binding {
                        var: v.clone(),
                        tuple: t.clone(),
                        schema: schema.clone(),
                    });
                    let r = self.eval_formula(body, bindings);
                    bindings.pop();
                    if r? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::All(v, range, body) => {
                let rel = self.eval_range(range, bindings)?;
                if let Some(decided) = self.quant_probe(v, range, &rel, body, bindings, false)? {
                    return Ok(decided);
                }
                let schema = rel.schema().clone();
                for t in rel.iter() {
                    bindings.push(Binding {
                        var: v.clone(),
                        tuple: t.clone(),
                        schema: schema.clone(),
                    });
                    let r = self.eval_formula(body, bindings);
                    bindings.pop();
                    if !r? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Member(v, range) => {
                let tuple = lookup(bindings, v)?.tuple.clone();
                let rel = self.eval_range(range, bindings)?;
                Ok(rel.contains(&tuple))
            }
            Formula::TupleIn(exprs, range) => {
                let mut fields = Vec::with_capacity(exprs.len());
                for e in exprs {
                    fields.push(self.eval_scalar(e, bindings)?);
                }
                let tuple = Tuple::new(fields);
                let rel = self.eval_range(range, bindings)?;
                Ok(rel.contains(&tuple))
            }
        }
    }

    /// Evaluate a scalar expression under the given bindings.
    pub fn eval_scalar(
        &mut self,
        e: &ScalarExpr,
        bindings: &Vec<Binding>,
    ) -> Result<Value, EvalError> {
        match e {
            ScalarExpr::Const(v) => Ok(v.clone()),
            ScalarExpr::Attr(var, attr) => {
                let b = lookup(bindings, var)?;
                let pos = b.schema.position(attr)?;
                Ok(b.tuple.get(pos).clone())
            }
            ScalarExpr::Param(p) => self.resolve_param(p),
            ScalarExpr::Arith(l, op, r) => {
                let lv = self.eval_scalar(l, bindings)?;
                let rv = self.eval_scalar(r, bindings)?;
                use crate::ast::ArithOp::*;
                Ok(match op {
                    Add => lv.add(&rv)?,
                    Sub => lv.sub(&rv)?,
                    Mul => lv.mul(&rv)?,
                    Div => lv.div(&rv)?,
                    Mod => lv.rem(&rv)?,
                })
            }
        }
    }

    fn resolve_param(&self, name: &str) -> Result<Value, EvalError> {
        for frame in self.param_frames.iter().rev() {
            if let Some(v) = frame.get(name) {
                return Ok(v.clone());
            }
        }
        self.catalog.scalar_param(name)
    }
}

/// An executable plan step: which binding position to enumerate, how.
struct CompiledStep {
    position: usize,
    access: CompiledAccess,
}

enum CompiledAccess {
    /// Iterate the whole range.
    Scan,
    /// Probe `index` with a key assembled from `keys`.
    Probe {
        index: Arc<HashIndex>,
        keys: Vec<CompiledKey>,
    },
}

/// One component of a probe key.
enum CompiledKey {
    /// Resolved before the loops started (constant, parameter, outer
    /// variable attribute).
    Fixed(Value),
    /// Read from the binding at stack slot `slot`, field `attr_pos`.
    FromBinding { slot: usize, attr_pos: usize },
}

/// Find the innermost binding of `var`.
fn lookup<'b>(bindings: &'b [Binding], var: &str) -> Result<&'b Binding, EvalError> {
    bindings
        .iter()
        .rev()
        .find(|b| b.var == var)
        .ok_or_else(|| EvalError::UnboundVariable(var.to_string()))
}

/// Is the range expression free of references to outer tuple variables
/// and parameters (and therefore safe to cache by syntax)?
pub fn is_binding_free(range: &RangeExpr) -> bool {
    fn scalar_free(e: &ScalarExpr, local: &mut Vec<String>) -> bool {
        match e {
            ScalarExpr::Const(_) => true,
            ScalarExpr::Param(_) => false,
            ScalarExpr::Attr(v, _) => local.iter().any(|l| l == v),
            ScalarExpr::Arith(l, _, r) => scalar_free(l, local) && scalar_free(r, local),
        }
    }
    fn formula_free(f: &Formula, local: &mut Vec<String>) -> bool {
        match f {
            Formula::True | Formula::False => true,
            Formula::Cmp(l, _, r) => scalar_free(l, local) && scalar_free(r, local),
            Formula::And(a, b) | Formula::Or(a, b) => {
                formula_free(a, local) && formula_free(b, local)
            }
            Formula::Not(inner) => formula_free(inner, local),
            Formula::Some(v, range, body) | Formula::All(v, range, body) => {
                if !range_free(range, local) {
                    return false;
                }
                local.push(v.clone());
                let ok = formula_free(body, local);
                local.pop();
                ok
            }
            Formula::Member(v, range) => local.iter().any(|l| l == v) && range_free(range, local),
            Formula::TupleIn(exprs, range) => {
                exprs.iter().all(|e| scalar_free(e, local)) && range_free(range, local)
            }
        }
    }
    fn range_free(r: &RangeExpr, local: &mut Vec<String>) -> bool {
        match r {
            RangeExpr::Rel(_) => true,
            RangeExpr::Selected { base, args, .. } => {
                range_free(base, local) && args.iter().all(|a| scalar_free(a, local))
            }
            RangeExpr::Constructed {
                base,
                args,
                scalar_args,
                ..
            } => {
                range_free(base, local)
                    && args.iter().all(|a| range_free(a, local))
                    && scalar_args.iter().all(|s| scalar_free(s, local))
            }
            RangeExpr::SetFormer(sf) => sf.branches.iter().all(|b| {
                let mark = local.len();
                for (v, range) in &b.bindings {
                    if !range_free(range, local) {
                        local.truncate(mark);
                        return false;
                    }
                    local.push(v.clone());
                }
                let ok = formula_free(&b.predicate, local)
                    && match &b.target {
                        Target::Var(v) => local.iter().any(|l| l == v),
                        Target::Tuple(exprs) => exprs.iter().all(|e| scalar_free(e, local)),
                    };
                local.truncate(mark);
                ok
            }),
        }
    }
    range_free(range, &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, SelectorDef};
    use crate::builder::*;
    use crate::env::MapCatalog;
    use dc_value::tuple;

    fn infront(ts: &[(&str, &str)]) -> Relation {
        Relation::from_tuples(
            Schema::of(&[("front", Domain::Str), ("back", Domain::Str)]),
            ts.iter().map(|(a, b)| tuple![*a, *b]),
        )
        .unwrap()
    }

    fn catalog() -> MapCatalog {
        MapCatalog::new().with_relation(
            "Infront",
            infront(&[("vase", "table"), ("table", "chair"), ("chair", "wall")]),
        )
    }

    /// The paper's ahead-2 body (§2.3):
    /// `{ EACH r IN Infront: TRUE,
    ///    <f.front, b.back> OF EACH f, b IN Infront: f.back = b.front }`
    fn ahead2_expr() -> RangeExpr {
        set_former(vec![
            Branch::each("r", rel("Infront"), tru()),
            Branch::projecting(
                vec![attr("f", "front"), attr("b", "back")],
                vec![("f".into(), rel("Infront")), ("b".into(), rel("Infront"))],
                eq(attr("f", "back"), attr("b", "front")),
            ),
        ])
    }

    #[test]
    fn ahead2_from_the_paper() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let out = ev.eval(&ahead2_expr()).unwrap();
        // Base pairs plus two-step pairs.
        assert_eq!(out.len(), 5);
        assert!(out.contains(&tuple!["vase", "chair"]));
        assert!(out.contains(&tuple!["table", "wall"]));
        assert!(!out.contains(&tuple!["vase", "wall"])); // three steps
    }

    #[test]
    fn branch_schema_names_from_attrs() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let out = ev.eval(&ahead2_expr()).unwrap();
        let names: Vec<&str> = out
            .schema()
            .attributes()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(names, vec!["front", "back"]);
    }

    #[test]
    fn selector_hidden_by() {
        // SELECTOR hidden_by(Obj) FOR Rel; EACH r IN Rel: r.front = Obj
        let def = SelectorDef {
            name: "hidden_by".into(),
            element_var: "r".into(),
            params: vec![("Obj".into(), Domain::Str)],
            predicate: eq(attr("r", "front"), param("Obj")),
        };
        let cat = catalog().with_selector(def);
        let mut ev = Evaluator::new(&cat);
        let e = rel("Infront").select("hidden_by", vec![cnst("table")]);
        let out = ev.eval(&e).unwrap();
        assert_eq!(out.sorted_tuples(), vec![tuple!["table", "chair"]]);
    }

    #[test]
    fn selector_arity_mismatch() {
        let def = SelectorDef {
            name: "s".into(),
            element_var: "r".into(),
            params: vec![("Obj".into(), Domain::Str)],
            predicate: tru(),
        };
        let cat = catalog().with_selector(def);
        let mut ev = Evaluator::new(&cat);
        let e = rel("Infront").select("s", vec![]);
        assert!(matches!(ev.eval(&e), Err(EvalError::ArityMismatch { .. })));
    }

    #[test]
    fn selector_param_domain_checked() {
        let def = SelectorDef {
            name: "s".into(),
            element_var: "r".into(),
            params: vec![("Obj".into(), Domain::Int)],
            predicate: tru(),
        };
        let cat = catalog().with_selector(def);
        let mut ev = Evaluator::new(&cat);
        let e = rel("Infront").select("s", vec![cnst("table")]);
        assert!(matches!(ev.eval(&e), Err(EvalError::Type(_))));
    }

    #[test]
    fn referential_integrity_selector() {
        // §2.3: EACH r IN Rel: SOME o1 IN Objects (r.front = o1.part)
        let objects = Relation::from_tuples(
            Schema::of(&[("part", Domain::Str)]),
            vec![tuple!["vase"], tuple!["table"], tuple!["chair"]],
        )
        .unwrap();
        let def = SelectorDef {
            name: "refint".into(),
            element_var: "r".into(),
            params: vec![],
            predicate: some(
                "o1",
                rel("Objects"),
                eq(attr("r", "front"), attr("o1", "part")),
            )
            .and(some(
                "o2",
                rel("Objects"),
                eq(attr("r", "back"), attr("o2", "part")),
            )),
        };
        let cat = catalog()
            .with_relation("Objects", objects)
            .with_selector(def);
        let mut ev = Evaluator::new(&cat);
        let out = ev.eval(&rel("Infront").select("refint", vec![])).unwrap();
        // ("chair","wall") fails: "wall" is not an object.
        assert_eq!(out.len(), 2);
        assert!(!out.contains(&tuple!["chair", "wall"]));
    }

    #[test]
    fn quantifiers_some_all() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        // EACH r IN Infront: ALL x IN Infront (x.front # r.back)
        // keeps tuples whose back never appears as a front — sinks.
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            all(
                "x",
                rel("Infront"),
                ne(attr("x", "front"), attr("r", "back")),
            ),
        )]);
        let out = ev.eval(&e).unwrap();
        assert_eq!(out.sorted_tuples(), vec![tuple!["chair", "wall"]]);
        // SOME dual: tuples whose back does appear as a front.
        let e2 = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some(
                "x",
                rel("Infront"),
                eq(attr("x", "front"), attr("r", "back")),
            ),
        )]);
        let out2 = ev.eval(&e2).unwrap();
        assert_eq!(out2.len(), 2);
    }

    #[test]
    fn membership_predicates() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        // EACH r IN Infront: NOT (<r.back, r.front> IN Infront)
        // (keeps tuples with no reverse pair — all of them here).
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            Formula::TupleIn(vec![attr("r", "back"), attr("r", "front")], rel("Infront")).negate(),
        )]);
        let out = ev.eval(&e).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn member_var_in_range() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        // EACH r IN Infront: r IN Infront — trivially all.
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            Formula::Member("r".into(), rel("Infront")),
        )]);
        assert_eq!(ev.eval(&e).unwrap().len(), 3);
    }

    #[test]
    fn arithmetic_in_targets() {
        let nums = Relation::from_tuples(
            Schema::of(&[("n", Domain::Int)]),
            vec![tuple![1i64], tuple![2i64]],
        )
        .unwrap();
        let cat = MapCatalog::new().with_relation("N", nums);
        let mut ev = Evaluator::new(&cat);
        // <r.n + 10> OF EACH r IN N: TRUE
        let e = set_former(vec![Branch::projecting(
            vec![add(attr("r", "n"), cnst(10i64))],
            vec![("r".into(), rel("N"))],
            tru(),
        )]);
        let out = ev.eval(&e).unwrap();
        assert!(out.contains(&tuple![11i64]));
        assert!(out.contains(&tuple![12i64]));
    }

    #[test]
    fn cross_type_comparison_is_error() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            eq(attr("r", "front"), cnst(1i64)),
        )]);
        assert!(matches!(
            ev.eval(&e),
            Err(EvalError::CrossTypeComparison { .. })
        ));
    }

    #[test]
    fn unbound_variable_error() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            eq(attr("zz", "front"), cnst("x")),
        )]);
        assert!(matches!(ev.eval(&e), Err(EvalError::UnboundVariable(_))));
    }

    #[test]
    fn union_of_incompatible_branches_rejected() {
        let nums =
            Relation::from_tuples(Schema::of(&[("n", Domain::Int)]), vec![tuple![1i64]]).unwrap();
        let cat = catalog().with_relation("N", nums);
        let mut ev = Evaluator::new(&cat);
        let e = set_former(vec![
            Branch::each("r", rel("Infront"), tru()),
            Branch::each("x", rel("N"), tru()),
        ]);
        assert!(ev.eval(&e).is_err());
    }

    #[test]
    fn correlated_subquery_not_cached() {
        // The inner set former references the outer variable `r`; its
        // value must be recomputed per outer tuple.
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        // EACH r IN Infront:
        //   SOME x IN {EACH y IN Infront: y.front = r.back} (TRUE)
        let inner = set_former(vec![Branch::each(
            "y",
            rel("Infront"),
            eq(attr("y", "front"), attr("r", "back")),
        )]);
        assert!(!is_binding_free(&inner));
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some("x", inner, tru()),
        )]);
        let out = ev.eval(&e).unwrap();
        // Same result as the SOME formulation above.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn binding_free_detection() {
        assert!(is_binding_free(&rel("R")));
        assert!(is_binding_free(&rel("R").select("s", vec![cnst(1i64)])));
        assert!(!is_binding_free(
            &rel("R").select("s", vec![attr("r", "a")])
        ));
        assert!(!is_binding_free(&rel("R").select("s", vec![param("P")])));
        // A closed set former is binding-free even though it binds its
        // own variables.
        let closed = set_former(vec![Branch::each("x", rel("R"), tru())]);
        assert!(is_binding_free(&closed));
    }

    #[test]
    fn constructed_range_delegates_to_catalog() {
        let cat = catalog().with_constructor_fn("identity", Box::new(|base, _| Ok(base)));
        let mut ev = Evaluator::new(&cat);
        let out = ev
            .eval(&rel("Infront").construct("identity", vec![]))
            .unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn duplicate_target_names_disambiguated() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        // <f.front, b.front> OF … — two `front` columns.
        let e = set_former(vec![Branch::projecting(
            vec![attr("f", "front"), attr("b", "front")],
            vec![("f".into(), rel("Infront")), ("b".into(), rel("Infront"))],
            eq(attr("f", "back"), attr("b", "front")),
        )]);
        let out = ev.eval(&e).unwrap();
        let names: Vec<&str> = out
            .schema()
            .attributes()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(names, vec!["front", "front_"]);
    }

    #[test]
    fn index_path_agrees_with_nested_loop_reference() {
        // The join branch of §2.3 runs through the index-nested-loop
        // executor; the reference evaluator is the semantics oracle.
        let cat = catalog();
        let planned = Evaluator::new(&cat).eval(&ahead2_expr()).unwrap();
        let reference = Evaluator::new(&cat)
            .force_nested_loop()
            .eval(&ahead2_expr())
            .unwrap();
        assert_eq!(planned, reference);
        assert_eq!(planned.len(), 5);
    }

    #[test]
    fn outer_variable_key_probes_correlated_branch() {
        // The inner set former's equality key references the outer
        // variable `r` — compiled as a Fixed key per outer binding.
        let cat = catalog();
        let inner = set_former(vec![Branch::each(
            "y",
            rel("Infront"),
            eq(attr("y", "front"), attr("r", "back")),
        )]);
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some("x", inner, tru()),
        )]);
        let planned = Evaluator::new(&cat).eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        assert_eq!(planned.len(), 2);
    }

    #[test]
    fn cross_type_key_demoted_to_residual_error() {
        // `r.front = 1` would probe a STRING column with an INTEGER key;
        // the compiler must demote the atom so the reference error
        // semantics (CrossTypeComparison) survive.
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let e = set_former(vec![Branch::projecting(
            vec![attr("f", "front")],
            vec![("f".into(), rel("Infront")), ("b".into(), rel("Infront"))],
            eq(attr("f", "back"), attr("b", "front")).and(eq(attr("f", "front"), cnst(1i64))),
        )]);
        assert!(matches!(
            ev.eval(&e),
            Err(EvalError::CrossTypeComparison { .. })
        ));
    }

    #[test]
    fn unknown_param_key_demoted_not_planned_away() {
        // An unresolvable parameter key falls back to the residual,
        // which raises the same UnknownParam the reference path does.
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let e = set_former(vec![Branch::projecting(
            vec![attr("f", "front")],
            vec![("f".into(), rel("Infront")), ("b".into(), rel("Infront"))],
            eq(attr("f", "back"), attr("b", "front")).and(eq(attr("b", "back"), param("Ghost"))),
        )]);
        assert!(matches!(ev.eval(&e), Err(EvalError::UnknownParam(_))));
    }

    #[test]
    fn three_way_join_chains_probes() {
        // EACH a, b, c IN Infront: a.back = b.front AND b.back = c.front
        // — two probe steps chained off one scan.
        let cat = catalog();
        let e = set_former(vec![Branch::projecting(
            vec![attr("a", "front"), attr("c", "back")],
            vec![
                ("a".into(), rel("Infront")),
                ("b".into(), rel("Infront")),
                ("c".into(), rel("Infront")),
            ],
            eq(attr("a", "back"), attr("b", "front"))
                .and(eq(attr("b", "back"), attr("c", "front"))),
        )]);
        let planned = Evaluator::new(&cat).eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        // The only 3-edge chain is vase→table→chair→wall ⇒ <vase, wall>.
        assert_eq!(planned.sorted_tuples(), vec![tuple!["vase", "wall"]]);
    }

    #[test]
    fn catalog_resolution_shares_storage() {
        // COW acceptance: resolving a named relation hands out a handle
        // sharing the catalog's tuple storage — no copy per branch.
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let out = ev.eval(&rel("Infront")).unwrap();
        let original = cat.relation("Infront").unwrap();
        assert!(Relation::shares_storage(&out, &original));
        // Repeated resolution through the range cache shares too.
        let again = ev.eval(&rel("Infront")).unwrap();
        assert!(Relation::shares_storage(&out, &again));
    }

    fn objects_catalog() -> MapCatalog {
        let objects = Relation::from_tuples(
            Schema::of(&[("part", Domain::Str), ("kind", Domain::Str)]),
            vec![
                tuple!["vase", "decor"],
                tuple!["table", "furniture"],
                tuple!["chair", "furniture"],
            ],
        )
        .unwrap();
        catalog().with_relation("Objects", objects)
    }

    #[test]
    fn some_probe_agrees_with_reference() {
        // EACH r IN Infront: SOME o IN Objects (o.part = r.back) —
        // the selector-style predicate the quantifier probe targets.
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some(
                "o",
                rel("Objects"),
                eq(attr("o", "part"), attr("r", "back")),
            ),
        )]);
        let cat = objects_catalog();
        let planned = Evaluator::new(&cat).eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        // ("chair","wall") drops: "wall" is not an object.
        assert_eq!(planned.len(), 2);
    }

    #[test]
    fn some_probe_with_residual_conjunct() {
        // The probe narrows to the bucket; the residual (`o.kind`)
        // still filters within it.
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some(
                "o",
                rel("Objects"),
                eq(attr("o", "part"), attr("r", "back"))
                    .and(eq(attr("o", "kind"), cnst("furniture"))),
            ),
        )]);
        let cat = objects_catalog();
        let planned = Evaluator::new(&cat).eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        assert_eq!(planned.len(), 2); // backs "table" and "chair"
    }

    #[test]
    fn all_probe_agrees_with_reference() {
        // ALL o IN Objects (o.part = r.front): only satisfiable when
        // the bucket covers the whole range — never here (3 objects).
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            all(
                "o",
                rel("Objects"),
                eq(attr("o", "part"), attr("r", "front")),
            ),
        )]);
        let cat = objects_catalog();
        let planned = Evaluator::new(&cat).eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        assert!(planned.is_empty());

        // Single-object registry: the bucket can cover the range.
        let one = Relation::from_tuples(
            Schema::of(&[("part", Domain::Str), ("kind", Domain::Str)]),
            vec![tuple!["vase", "decor"]],
        )
        .unwrap();
        let cat1 = catalog().with_relation("Objects", one);
        let planned1 = Evaluator::new(&cat1).eval(&e).unwrap();
        let reference1 = Evaluator::new(&cat1).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned1, reference1);
        assert_eq!(planned1.sorted_tuples(), vec![tuple!["vase", "table"]]);

        // Empty registry: ALL is vacuously true on both paths.
        let empty = Relation::new(Schema::of(&[("part", Domain::Str), ("kind", Domain::Str)]));
        let cat0 = catalog().with_relation("Objects", empty);
        let planned0 = Evaluator::new(&cat0).eval(&e).unwrap();
        assert_eq!(planned0.len(), 3);
    }

    #[test]
    fn quant_probe_demotes_cross_type_key() {
        // `o.part = 1` probes a STRING column with an INTEGER key: the
        // atom is demoted and the scan raises the reference error.
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some("o", rel("Objects"), eq(attr("o", "part"), cnst(1i64))),
        )]);
        let cat = objects_catalog();
        assert!(matches!(
            Evaluator::new(&cat).eval(&e),
            Err(EvalError::CrossTypeComparison { .. })
        ));
    }

    #[test]
    fn negated_some_probe_agrees() {
        // Hidden objects: EACH r IN Infront: NOT SOME o IN Objects
        // (o.part = r.back) — negation wraps the probed quantifier.
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            not(some(
                "o",
                rel("Objects"),
                eq(attr("o", "part"), attr("r", "back")),
            )),
        )]);
        let cat = objects_catalog();
        let planned = Evaluator::new(&cat).eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        assert_eq!(planned.sorted_tuples(), vec![tuple!["chair", "wall"]]);
    }

    #[test]
    fn cmp_op_comparisons() {
        let nums = Relation::from_tuples(
            Schema::of(&[("n", Domain::Int)]),
            (0..5).map(|i| tuple![i as i64]),
        )
        .unwrap();
        let cat = MapCatalog::new().with_relation("N", nums);
        let mut ev = Evaluator::new(&cat);
        for (op, expect) in [
            (CmpOp::Lt, 2usize),
            (CmpOp::Le, 3),
            (CmpOp::Gt, 2),
            (CmpOp::Ge, 3),
            (CmpOp::Eq, 1),
            (CmpOp::Ne, 4),
        ] {
            let e = set_former(vec![Branch::each(
                "r",
                rel("N"),
                Formula::Cmp(attr("r", "n"), op, cnst(2i64)),
            )]);
            assert_eq!(ev.eval(&e).unwrap().len(), expect, "{op:?}");
        }
    }
}
