//! The reference evaluator: direct nested-loop semantics for the
//! calculus.
//!
//! This evaluator is deliberately simple — it is the executable
//! *definition* of expression meaning, against which the optimizer's
//! plans (`dc-optimizer`) are differentially tested. It is also the
//! "unoptimized database programming language" baseline of the paper's
//! §1: queries written with constructors but evaluated without any of
//! the §4 machinery.

use dc_relation::Relation;
use dc_value::{Attribute, Domain, FxHashMap, FxHashSet, Schema, Tuple, Value};

use crate::ast::{Branch, Formula, RangeExpr, ScalarExpr, SetFormer, Target, Var};
use crate::env::Catalog;
use crate::error::EvalError;

/// A bound tuple variable: name, current tuple, and the schema used to
/// resolve `var.attr` references.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Variable name.
    pub var: Var,
    /// Bound tuple.
    pub tuple: Tuple,
    /// Schema of the range the variable iterates over.
    pub schema: Schema,
}

/// Infer the base domain of a value (for target-schema synthesis).
pub fn value_domain(v: &Value) -> Domain {
    match v {
        Value::Int(_) => Domain::Int,
        Value::Card(_) => Domain::Card,
        Value::Str(_) => Domain::Str,
        Value::Bool(_) => Domain::Bool,
    }
}

/// The nested-loop reference evaluator.
///
/// An `Evaluator` caches binding-free range values (e.g. a base relation
/// referenced inside a quantifier) for the duration of its lifetime;
/// create a fresh evaluator whenever the underlying relations may have
/// changed (the fixpoint engine creates one per iteration).
pub struct Evaluator<'a> {
    catalog: &'a dyn Catalog,
    /// Stack of selector-application parameter frames.
    param_frames: Vec<FxHashMap<String, Value>>,
    /// Cache of binding-free range values.
    range_cache: FxHashMap<RangeExpr, Relation>,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator over a catalog.
    pub fn new(catalog: &'a dyn Catalog) -> Evaluator<'a> {
        Evaluator { catalog, param_frames: Vec::new(), range_cache: FxHashMap::default() }
    }

    /// Evaluate a closed range expression (a query).
    pub fn eval(&mut self, range: &RangeExpr) -> Result<Relation, EvalError> {
        let mut bindings = Vec::new();
        self.eval_range(range, &mut bindings)
    }

    /// Evaluate a range expression under the given bindings.
    pub fn eval_range(
        &mut self,
        range: &RangeExpr,
        bindings: &mut Vec<Binding>,
    ) -> Result<Relation, EvalError> {
        let cacheable = self.param_frames.is_empty() && is_binding_free(range);
        if cacheable {
            if let Some(hit) = self.range_cache.get(range) {
                return Ok(hit.clone());
            }
        }
        let out = self.eval_range_uncached(range, bindings)?;
        if cacheable {
            self.range_cache.insert(range.clone(), out.clone());
        }
        Ok(out)
    }

    fn eval_range_uncached(
        &mut self,
        range: &RangeExpr,
        bindings: &mut Vec<Binding>,
    ) -> Result<Relation, EvalError> {
        match range {
            RangeExpr::Rel(name) => Ok(self.catalog.relation(name)?.into_owned()),
            RangeExpr::Selected { base, selector, args } => {
                let base_rel = self.eval_range(base, bindings)?;
                self.apply_selector(base_rel, selector, args, bindings)
            }
            RangeExpr::Constructed { base, constructor, args, scalar_args } => {
                let base_rel = self.eval_range(base, bindings)?;
                let mut arg_rels = Vec::with_capacity(args.len());
                for a in args {
                    arg_rels.push(self.eval_range(a, bindings)?);
                }
                let mut scalars = Vec::with_capacity(scalar_args.len());
                for s in scalar_args {
                    scalars.push(self.eval_scalar(s, bindings)?);
                }
                self.catalog.apply_constructor(base_rel, constructor, arg_rels, scalars)
            }
            RangeExpr::SetFormer(sf) => self.eval_set_former(sf, bindings),
        }
    }

    /// Selector application `base[sel(args)]`: filter `base` by the
    /// selector predicate with the element variable bound to each tuple
    /// and the formal parameters bound to the evaluated arguments.
    pub fn apply_selector(
        &mut self,
        base: Relation,
        selector: &str,
        args: &[ScalarExpr],
        bindings: &mut Vec<Binding>,
    ) -> Result<Relation, EvalError> {
        let def = self.catalog.selector(selector)?.clone();
        if args.len() != def.params.len() {
            return Err(EvalError::ArityMismatch {
                name: def.name.clone(),
                expected: def.params.len(),
                actual: args.len(),
            });
        }
        let mut frame = FxHashMap::default();
        for ((pname, pdom), arg) in def.params.iter().zip(args) {
            let v = self.eval_scalar(arg, bindings)?;
            pdom.check(&v)?;
            frame.insert(pname.clone(), v);
        }
        self.param_frames.push(frame);
        // The selector body is evaluated in its own scope: only the
        // element variable is visible (plus catalog relations).
        let mut inner: Vec<Binding> = Vec::with_capacity(1);
        let mut out = Relation::new(base.schema().clone());
        let result: Result<(), EvalError> = (|| {
            for t in base.iter() {
                inner.push(Binding {
                    var: def.element_var.clone(),
                    tuple: t.clone(),
                    schema: base.schema().clone(),
                });
                let keep = self.eval_formula(&def.predicate, &mut inner);
                inner.pop();
                if keep? {
                    out.insert_unchecked(t.clone())?;
                }
            }
            Ok(())
        })();
        self.param_frames.pop();
        result?;
        Ok(out)
    }

    fn eval_set_former(
        &mut self,
        sf: &SetFormer,
        bindings: &mut Vec<Binding>,
    ) -> Result<Relation, EvalError> {
        if sf.branches.is_empty() {
            return Err(EvalError::Other("set former with no branches".into()));
        }
        let mut result: Option<Relation> = None;
        for branch in &sf.branches {
            // Ranges are evaluated in the enclosing scope, once per
            // branch (not per combination).
            let mut ranges = Vec::with_capacity(branch.bindings.len());
            for (_, r) in &branch.bindings {
                ranges.push(self.eval_range(r, bindings)?);
            }
            let schema = self.branch_schema(branch, &ranges, bindings)?;
            let out = match &mut result {
                None => {
                    result = Some(Relation::new(schema));
                    result.as_mut().unwrap()
                }
                Some(rel) => {
                    if !rel.schema().union_compatible(&schema) {
                        return Err(EvalError::Type(dc_value::TypeError::SchemaMismatch {
                            context: "set-former branches are not union-compatible".into(),
                        }));
                    }
                    rel
                }
            };
            // `out` cannot be borrowed across the recursive loop that
            // needs `&mut self`; collect into a scratch relation.
            let mut scratch = Relation::new(out.schema().clone());
            self.loop_branch(branch, &ranges, 0, bindings, &mut scratch)?;
            dc_relation::algebra::union_into(out, &scratch)?;
        }
        Ok(result.unwrap())
    }

    fn loop_branch(
        &mut self,
        branch: &Branch,
        ranges: &[Relation],
        depth: usize,
        bindings: &mut Vec<Binding>,
        out: &mut Relation,
    ) -> Result<(), EvalError> {
        if depth == branch.bindings.len() {
            if self.eval_formula(&branch.predicate, bindings)? {
                let tuple = match &branch.target {
                    Target::Var(v) => lookup(bindings, v)?.tuple.clone(),
                    Target::Tuple(exprs) => {
                        let mut fields = Vec::with_capacity(exprs.len());
                        for e in exprs {
                            fields.push(self.eval_scalar(e, bindings)?);
                        }
                        Tuple::new(fields)
                    }
                };
                out.insert(tuple)?;
            }
            return Ok(());
        }
        let (var, _) = &branch.bindings[depth];
        let rel = &ranges[depth];
        let schema = rel.schema().clone();
        for t in rel.iter() {
            bindings.push(Binding { var: var.clone(), tuple: t.clone(), schema: schema.clone() });
            let r = self.loop_branch(branch, ranges, depth + 1, bindings, out);
            bindings.pop();
            r?;
        }
        Ok(())
    }

    /// Synthesise the output schema of a branch.
    fn branch_schema(
        &mut self,
        branch: &Branch,
        ranges: &[Relation],
        bindings: &Vec<Binding>,
    ) -> Result<Schema, EvalError> {
        match &branch.target {
            Target::Var(v) => {
                let idx = branch
                    .bindings
                    .iter()
                    .position(|(bv, _)| bv == v)
                    .ok_or_else(|| EvalError::UnboundVariable(v.clone()))?;
                Ok(ranges[idx].schema().clone())
            }
            Target::Tuple(exprs) => {
                let mut attrs: Vec<Attribute> = Vec::with_capacity(exprs.len());
                let mut used: FxHashSet<String> = FxHashSet::default();
                for (i, e) in exprs.iter().enumerate() {
                    let (name, domain) = self.target_field(e, branch, ranges, bindings, i)?;
                    let mut name = name;
                    while !used.insert(name.clone()) {
                        name.push('_');
                    }
                    attrs.push(Attribute::new(name, domain));
                }
                Ok(Schema::new(attrs))
            }
        }
    }

    fn target_field(
        &mut self,
        e: &ScalarExpr,
        branch: &Branch,
        ranges: &[Relation],
        bindings: &Vec<Binding>,
        i: usize,
    ) -> Result<(String, Domain), EvalError> {
        match e {
            ScalarExpr::Attr(v, attr) => {
                // Prefer the branch's own bindings; fall back to outer
                // bindings (correlated targets).
                if let Some(idx) = branch.bindings.iter().position(|(bv, _)| bv == v) {
                    let schema = ranges[idx].schema();
                    let pos = schema.position(attr)?;
                    Ok((attr.clone(), schema.domain(pos).base()))
                } else {
                    let b = lookup(bindings, v)?;
                    let pos = b.schema.position(attr)?;
                    Ok((attr.clone(), b.schema.domain(pos).base()))
                }
            }
            ScalarExpr::Const(v) => Ok((format!("f{i}"), value_domain(v))),
            ScalarExpr::Param(p) => {
                let v = self.resolve_param(p)?;
                Ok((p.clone(), value_domain(&v)))
            }
            ScalarExpr::Arith(l, _, _) => {
                let (_, d) = self.target_field(l, branch, ranges, bindings, i)?;
                Ok((format!("f{i}"), d))
            }
        }
    }

    /// Evaluate a formula under the given bindings.
    pub fn eval_formula(
        &mut self,
        f: &Formula,
        bindings: &mut Vec<Binding>,
    ) -> Result<bool, EvalError> {
        match f {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Cmp(l, op, r) => {
                let lv = self.eval_scalar(l, bindings)?;
                let rv = self.eval_scalar(r, bindings)?;
                let ord = lv.try_cmp(&rv).ok_or_else(|| EvalError::CrossTypeComparison {
                    lhs: lv.to_string(),
                    rhs: rv.to_string(),
                })?;
                Ok(op.eval(ord))
            }
            Formula::And(a, b) => Ok(self.eval_formula(a, bindings)? && self.eval_formula(b, bindings)?),
            Formula::Or(a, b) => Ok(self.eval_formula(a, bindings)? || self.eval_formula(b, bindings)?),
            Formula::Not(inner) => Ok(!self.eval_formula(inner, bindings)?),
            Formula::Some(v, range, body) => {
                let rel = self.eval_range(range, bindings)?;
                let schema = rel.schema().clone();
                for t in rel.iter() {
                    bindings.push(Binding {
                        var: v.clone(),
                        tuple: t.clone(),
                        schema: schema.clone(),
                    });
                    let r = self.eval_formula(body, bindings);
                    bindings.pop();
                    if r? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::All(v, range, body) => {
                let rel = self.eval_range(range, bindings)?;
                let schema = rel.schema().clone();
                for t in rel.iter() {
                    bindings.push(Binding {
                        var: v.clone(),
                        tuple: t.clone(),
                        schema: schema.clone(),
                    });
                    let r = self.eval_formula(body, bindings);
                    bindings.pop();
                    if !r? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Member(v, range) => {
                let tuple = lookup(bindings, v)?.tuple.clone();
                let rel = self.eval_range(range, bindings)?;
                Ok(rel.contains(&tuple))
            }
            Formula::TupleIn(exprs, range) => {
                let mut fields = Vec::with_capacity(exprs.len());
                for e in exprs {
                    fields.push(self.eval_scalar(e, bindings)?);
                }
                let tuple = Tuple::new(fields);
                let rel = self.eval_range(range, bindings)?;
                Ok(rel.contains(&tuple))
            }
        }
    }

    /// Evaluate a scalar expression under the given bindings.
    pub fn eval_scalar(
        &mut self,
        e: &ScalarExpr,
        bindings: &Vec<Binding>,
    ) -> Result<Value, EvalError> {
        match e {
            ScalarExpr::Const(v) => Ok(v.clone()),
            ScalarExpr::Attr(var, attr) => {
                let b = lookup(bindings, var)?;
                let pos = b.schema.position(attr)?;
                Ok(b.tuple.get(pos).clone())
            }
            ScalarExpr::Param(p) => self.resolve_param(p),
            ScalarExpr::Arith(l, op, r) => {
                let lv = self.eval_scalar(l, bindings)?;
                let rv = self.eval_scalar(r, bindings)?;
                use crate::ast::ArithOp::*;
                Ok(match op {
                    Add => lv.add(&rv)?,
                    Sub => lv.sub(&rv)?,
                    Mul => lv.mul(&rv)?,
                    Div => lv.div(&rv)?,
                    Mod => lv.rem(&rv)?,
                })
            }
        }
    }

    fn resolve_param(&self, name: &str) -> Result<Value, EvalError> {
        for frame in self.param_frames.iter().rev() {
            if let Some(v) = frame.get(name) {
                return Ok(v.clone());
            }
        }
        self.catalog.scalar_param(name)
    }
}

/// Find the innermost binding of `var`.
fn lookup<'b>(bindings: &'b [Binding], var: &str) -> Result<&'b Binding, EvalError> {
    bindings
        .iter()
        .rev()
        .find(|b| b.var == var)
        .ok_or_else(|| EvalError::UnboundVariable(var.to_string()))
}

/// Is the range expression free of references to outer tuple variables
/// and parameters (and therefore safe to cache by syntax)?
pub fn is_binding_free(range: &RangeExpr) -> bool {
    fn scalar_free(e: &ScalarExpr, local: &mut Vec<String>) -> bool {
        match e {
            ScalarExpr::Const(_) => true,
            ScalarExpr::Param(_) => false,
            ScalarExpr::Attr(v, _) => local.iter().any(|l| l == v),
            ScalarExpr::Arith(l, _, r) => scalar_free(l, local) && scalar_free(r, local),
        }
    }
    fn formula_free(f: &Formula, local: &mut Vec<String>) -> bool {
        match f {
            Formula::True | Formula::False => true,
            Formula::Cmp(l, _, r) => scalar_free(l, local) && scalar_free(r, local),
            Formula::And(a, b) | Formula::Or(a, b) => {
                formula_free(a, local) && formula_free(b, local)
            }
            Formula::Not(inner) => formula_free(inner, local),
            Formula::Some(v, range, body) | Formula::All(v, range, body) => {
                if !range_free(range, local) {
                    return false;
                }
                local.push(v.clone());
                let ok = formula_free(body, local);
                local.pop();
                ok
            }
            Formula::Member(v, range) => {
                local.iter().any(|l| l == v) && range_free(range, local)
            }
            Formula::TupleIn(exprs, range) => {
                exprs.iter().all(|e| scalar_free(e, local)) && range_free(range, local)
            }
        }
    }
    fn range_free(r: &RangeExpr, local: &mut Vec<String>) -> bool {
        match r {
            RangeExpr::Rel(_) => true,
            RangeExpr::Selected { base, args, .. } => {
                range_free(base, local) && args.iter().all(|a| scalar_free(a, local))
            }
            RangeExpr::Constructed { base, args, scalar_args, .. } => {
                range_free(base, local)
                    && args.iter().all(|a| range_free(a, local))
                    && scalar_args.iter().all(|s| scalar_free(s, local))
            }
            RangeExpr::SetFormer(sf) => sf.branches.iter().all(|b| {
                let mark = local.len();
                for (v, range) in &b.bindings {
                    if !range_free(range, local) {
                        local.truncate(mark);
                        return false;
                    }
                    local.push(v.clone());
                }
                let ok = formula_free(&b.predicate, local)
                    && match &b.target {
                        Target::Var(v) => local.iter().any(|l| l == v),
                        Target::Tuple(exprs) => exprs.iter().all(|e| scalar_free(e, local)),
                    };
                local.truncate(mark);
                ok
            }),
        }
    }
    range_free(range, &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, SelectorDef};
    use crate::builder::*;
    use crate::env::MapCatalog;
    use dc_value::tuple;

    fn infront(ts: &[(&str, &str)]) -> Relation {
        Relation::from_tuples(
            Schema::of(&[("front", Domain::Str), ("back", Domain::Str)]),
            ts.iter().map(|(a, b)| tuple![*a, *b]),
        )
        .unwrap()
    }

    fn catalog() -> MapCatalog {
        MapCatalog::new().with_relation(
            "Infront",
            infront(&[("vase", "table"), ("table", "chair"), ("chair", "wall")]),
        )
    }

    /// The paper's ahead-2 body (§2.3):
    /// `{ EACH r IN Infront: TRUE,
    ///    <f.front, b.back> OF EACH f, b IN Infront: f.back = b.front }`
    fn ahead2_expr() -> RangeExpr {
        set_former(vec![
            Branch::each("r", rel("Infront"), tru()),
            Branch::projecting(
                vec![attr("f", "front"), attr("b", "back")],
                vec![
                    ("f".into(), rel("Infront")),
                    ("b".into(), rel("Infront")),
                ],
                eq(attr("f", "back"), attr("b", "front")),
            ),
        ])
    }

    #[test]
    fn ahead2_from_the_paper() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let out = ev.eval(&ahead2_expr()).unwrap();
        // Base pairs plus two-step pairs.
        assert_eq!(out.len(), 5);
        assert!(out.contains(&tuple!["vase", "chair"]));
        assert!(out.contains(&tuple!["table", "wall"]));
        assert!(!out.contains(&tuple!["vase", "wall"])); // three steps
    }

    #[test]
    fn branch_schema_names_from_attrs() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let out = ev.eval(&ahead2_expr()).unwrap();
        let names: Vec<&str> =
            out.schema().attributes().iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["front", "back"]);
    }

    #[test]
    fn selector_hidden_by() {
        // SELECTOR hidden_by(Obj) FOR Rel; EACH r IN Rel: r.front = Obj
        let def = SelectorDef {
            name: "hidden_by".into(),
            element_var: "r".into(),
            params: vec![("Obj".into(), Domain::Str)],
            predicate: eq(attr("r", "front"), param("Obj")),
        };
        let cat = catalog().with_selector(def);
        let mut ev = Evaluator::new(&cat);
        let e = rel("Infront").select("hidden_by", vec![cnst("table")]);
        let out = ev.eval(&e).unwrap();
        assert_eq!(out.sorted_tuples(), vec![tuple!["table", "chair"]]);
    }

    #[test]
    fn selector_arity_mismatch() {
        let def = SelectorDef {
            name: "s".into(),
            element_var: "r".into(),
            params: vec![("Obj".into(), Domain::Str)],
            predicate: tru(),
        };
        let cat = catalog().with_selector(def);
        let mut ev = Evaluator::new(&cat);
        let e = rel("Infront").select("s", vec![]);
        assert!(matches!(ev.eval(&e), Err(EvalError::ArityMismatch { .. })));
    }

    #[test]
    fn selector_param_domain_checked() {
        let def = SelectorDef {
            name: "s".into(),
            element_var: "r".into(),
            params: vec![("Obj".into(), Domain::Int)],
            predicate: tru(),
        };
        let cat = catalog().with_selector(def);
        let mut ev = Evaluator::new(&cat);
        let e = rel("Infront").select("s", vec![cnst("table")]);
        assert!(matches!(ev.eval(&e), Err(EvalError::Type(_))));
    }

    #[test]
    fn referential_integrity_selector() {
        // §2.3: EACH r IN Rel: SOME o1 IN Objects (r.front = o1.part)
        let objects = Relation::from_tuples(
            Schema::of(&[("part", Domain::Str)]),
            vec![tuple!["vase"], tuple!["table"], tuple!["chair"]],
        )
        .unwrap();
        let def = SelectorDef {
            name: "refint".into(),
            element_var: "r".into(),
            params: vec![],
            predicate: some(
                "o1",
                rel("Objects"),
                eq(attr("r", "front"), attr("o1", "part")),
            )
            .and(some(
                "o2",
                rel("Objects"),
                eq(attr("r", "back"), attr("o2", "part")),
            )),
        };
        let cat = catalog().with_relation("Objects", objects).with_selector(def);
        let mut ev = Evaluator::new(&cat);
        let out = ev.eval(&rel("Infront").select("refint", vec![])).unwrap();
        // ("chair","wall") fails: "wall" is not an object.
        assert_eq!(out.len(), 2);
        assert!(!out.contains(&tuple!["chair", "wall"]));
    }

    #[test]
    fn quantifiers_some_all() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        // EACH r IN Infront: ALL x IN Infront (x.front # r.back)
        // keeps tuples whose back never appears as a front — sinks.
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            all("x", rel("Infront"), ne(attr("x", "front"), attr("r", "back"))),
        )]);
        let out = ev.eval(&e).unwrap();
        assert_eq!(out.sorted_tuples(), vec![tuple!["chair", "wall"]]);
        // SOME dual: tuples whose back does appear as a front.
        let e2 = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some("x", rel("Infront"), eq(attr("x", "front"), attr("r", "back"))),
        )]);
        let out2 = ev.eval(&e2).unwrap();
        assert_eq!(out2.len(), 2);
    }

    #[test]
    fn membership_predicates() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        // EACH r IN Infront: NOT (<r.back, r.front> IN Infront)
        // (keeps tuples with no reverse pair — all of them here).
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            Formula::TupleIn(
                vec![attr("r", "back"), attr("r", "front")],
                rel("Infront"),
            )
            .negate(),
        )]);
        let out = ev.eval(&e).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn member_var_in_range() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        // EACH r IN Infront: r IN Infront — trivially all.
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            Formula::Member("r".into(), rel("Infront")),
        )]);
        assert_eq!(ev.eval(&e).unwrap().len(), 3);
    }

    #[test]
    fn arithmetic_in_targets() {
        let nums = Relation::from_tuples(
            Schema::of(&[("n", Domain::Int)]),
            vec![tuple![1i64], tuple![2i64]],
        )
        .unwrap();
        let cat = MapCatalog::new().with_relation("N", nums);
        let mut ev = Evaluator::new(&cat);
        // <r.n + 10> OF EACH r IN N: TRUE
        let e = set_former(vec![Branch::projecting(
            vec![add(attr("r", "n"), cnst(10i64))],
            vec![("r".into(), rel("N"))],
            tru(),
        )]);
        let out = ev.eval(&e).unwrap();
        assert!(out.contains(&tuple![11i64]));
        assert!(out.contains(&tuple![12i64]));
    }

    #[test]
    fn cross_type_comparison_is_error() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            eq(attr("r", "front"), cnst(1i64)),
        )]);
        assert!(matches!(
            ev.eval(&e),
            Err(EvalError::CrossTypeComparison { .. })
        ));
    }

    #[test]
    fn unbound_variable_error() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            eq(attr("zz", "front"), cnst("x")),
        )]);
        assert!(matches!(ev.eval(&e), Err(EvalError::UnboundVariable(_))));
    }

    #[test]
    fn union_of_incompatible_branches_rejected() {
        let nums = Relation::from_tuples(
            Schema::of(&[("n", Domain::Int)]),
            vec![tuple![1i64]],
        )
        .unwrap();
        let cat = catalog().with_relation("N", nums);
        let mut ev = Evaluator::new(&cat);
        let e = set_former(vec![
            Branch::each("r", rel("Infront"), tru()),
            Branch::each("x", rel("N"), tru()),
        ]);
        assert!(ev.eval(&e).is_err());
    }

    #[test]
    fn correlated_subquery_not_cached() {
        // The inner set former references the outer variable `r`; its
        // value must be recomputed per outer tuple.
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        // EACH r IN Infront:
        //   SOME x IN {EACH y IN Infront: y.front = r.back} (TRUE)
        let inner = set_former(vec![Branch::each(
            "y",
            rel("Infront"),
            eq(attr("y", "front"), attr("r", "back")),
        )]);
        assert!(!is_binding_free(&inner));
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some("x", inner, tru()),
        )]);
        let out = ev.eval(&e).unwrap();
        // Same result as the SOME formulation above.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn binding_free_detection() {
        assert!(is_binding_free(&rel("R")));
        assert!(is_binding_free(
            &rel("R").select("s", vec![cnst(1i64)])
        ));
        assert!(!is_binding_free(
            &rel("R").select("s", vec![attr("r", "a")])
        ));
        assert!(!is_binding_free(&rel("R").select("s", vec![param("P")])));
        // A closed set former is binding-free even though it binds its
        // own variables.
        let closed = set_former(vec![Branch::each("x", rel("R"), tru())]);
        assert!(is_binding_free(&closed));
    }

    #[test]
    fn constructed_range_delegates_to_catalog() {
        let cat = catalog().with_constructor_fn(
            "identity",
            Box::new(|base, _| Ok(base)),
        );
        let mut ev = Evaluator::new(&cat);
        let out = ev.eval(&rel("Infront").construct("identity", vec![])).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn duplicate_target_names_disambiguated() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        // <f.front, b.front> OF … — two `front` columns.
        let e = set_former(vec![Branch::projecting(
            vec![attr("f", "front"), attr("b", "front")],
            vec![
                ("f".into(), rel("Infront")),
                ("b".into(), rel("Infront")),
            ],
            eq(attr("f", "back"), attr("b", "front")),
        )]);
        let out = ev.eval(&e).unwrap();
        let names: Vec<&str> =
            out.schema().attributes().iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["front", "front_"]);
    }

    #[test]
    fn cmp_op_comparisons() {
        let nums = Relation::from_tuples(
            Schema::of(&[("n", Domain::Int)]),
            (0..5).map(|i| tuple![i as i64]),
        )
        .unwrap();
        let cat = MapCatalog::new().with_relation("N", nums);
        let mut ev = Evaluator::new(&cat);
        for (op, expect) in [
            (CmpOp::Lt, 2usize),
            (CmpOp::Le, 3),
            (CmpOp::Gt, 2),
            (CmpOp::Ge, 3),
            (CmpOp::Eq, 1),
            (CmpOp::Ne, 4),
        ] {
            let e = set_former(vec![Branch::each(
                "r",
                rel("N"),
                Formula::Cmp(attr("r", "n"), op, cnst(2i64)),
            )]);
            assert_eq!(ev.eval(&e).unwrap().len(), expect, "{op:?}");
        }
    }
}
