//! The evaluator for the calculus.
//!
//! Two execution paths coexist:
//!
//! * **Reference nested loops** ([`Evaluator::force_nested_loop`]) — the
//!   executable *definition* of expression meaning: every set-former
//!   branch enumerates the cross product of its ranges and filters by
//!   the predicate. The optimizer's plans (`dc-optimizer`) and the
//!   index path below are differentially tested against it.
//! * **Index-nested-loop joins** (the default) — branches whose
//!   predicates carry conjunctive equality atoms are executed through
//!   [`crate::joinplan`] plans: one range is scanned, the others are
//!   probed through [`dc_index::HashIndex`]es keyed on the equality
//!   columns, so work is proportional to *matching* combinations rather
//!   than all combinations. The full predicate is re-checked on every
//!   surviving combination, so both paths produce identical relations
//!   and identical errors on every combination they both evaluate.
//!   The one deliberate divergence, shared with every
//!   predicate-pushdown engine: a runtime error (division by zero,
//!   cross-type comparison) hiding in a conjunct of a combination that
//!   an equality key already rejects is never raised on the index
//!   path, because the rejected combination is skipped outright.
//!   Equality atoms themselves never mask their own errors — keys that
//!   cannot be realised safely (type-mismatched, unresolvable) are
//!   demoted back to the residual.
//! * **Quantifier probes** — quantified subformulas
//!   (`SOME x IN R: x.a = r.b AND …`, and the `ALL` dual) whose bodies
//!   carry top-level equality atoms on the quantified variable are
//!   decided through a [`dc_index::HashIndex`] existence probe instead
//!   of a range scan: only bucket matches get the (full) body
//!   re-check, so selector-style predicates cost O(matches) per outer
//!   combination rather than O(|R|). `ALL` bodies are probed through
//!   their **falsifier** where possible (the NNF of the negated body,
//!   which makes implication-shaped bodies `NOT p OR q` probe-able) and
//!   through the bucket-covers-range check otherwise. The divergence
//!   policy above extends unchanged: an error hiding in the body of a
//!   tuple the equality key already rejects is never raised, because
//!   that tuple is skipped outright. [`Evaluator::force_nested_loop`]
//!   disables quantifier probes too.
//! * **Decorrelated quantifier ranges** — a quantifier over a
//!   *correlated* range (`SOME x IN {EACH y IN R: y.a = r.b AND …}`,
//!   a selector application with outer-variable arguments, or a
//!   multi-binding *join view* whose joint correlation key spans the
//!   bindings) would re-evaluate the range per outer combination.
//!   Instead the branch predicate is split into a decorrelated part
//!   and correlation atoms ([`joinplan::decorrelate_branch`]): the
//!   decorrelated part (for multiple bindings, an inner join planned
//!   through [`joinplan::plan_branch`]) is materialised once per
//!   evaluator (and catalog version — long-lived catalogs share it
//!   through [`Catalog::decorr_entry`]), bucketed on the joint key,
//!   and each outer combination is decided by probe —
//!   O(|R ⋈ S| + outer × matches) instead of O(outer × |R×S|). The
//!   split is exact, so the bucket *is* the range value and the full
//!   body re-check preserves semantics; every unsafe case falls back to
//!   the reference scan. Demotions and abandoned rewrites are recorded
//!   in the planner trace ([`Evaluator::plan_notes`]).
//! * **Partition-parallel execution** — a compiled branch plan whose
//!   residual predicate and target are *pure* (no quantifiers,
//!   membership tests, or constructor applications — evaluable from the
//!   bound tuples alone) is lowered into a self-contained
//!   [`dc_exec::Job`] and dispatched to the partition-parallel executor
//!   when the evaluator was configured with more than one worker
//!   ([`Evaluator::with_threads`]) and the scan side clears
//!   [`PARALLEL_SCAN_THRESHOLD`]: the scan is hash-split into shards,
//!   each worker runs the probe plan against the *same* shared
//!   read-only indexes, and the shard outputs merge in shard order —
//!   so the result relation is identical to the sequential path's for
//!   every thread count. Parameters and outer variables are resolved to
//!   constants at lowering time; any impurity (or an unresolvable name
//!   the sequential path would turn into an error) falls back to the
//!   sequential executor, which keeps catalogs — and their interior
//!   mutability — off the worker threads. Decorrelated-entry builds
//!   route through the same branch path and parallelise with it.

use std::sync::Arc;

use dc_governor::fail::{self, Site};
use dc_governor::{Meter, SolveError};
use dc_index::{HashIndex, RelationStats};
use dc_relation::Relation;
use dc_value::{Attribute, Domain, FxHashMap, FxHashSet, Schema, Tuple, Value};

use dc_trace::metrics::{Counter, MetricsRegistry};
use dc_trace::SpanKind;

use crate::ast::{Branch, CmpOp, Formula, RangeExpr, ScalarExpr, SetFormer, Target, Var};
use crate::env::{Catalog, DecorrCached};
use crate::error::EvalError;
use crate::joinplan::{self, Access, BranchPlan, KeySource, StepRationale};
use crate::plan_event::{DecorrRefusalReason, PlanEvent, QuantDemotionReason};
use crate::rewrite;

/// Reserved attribute-name prefix for the joint-key columns of a
/// materialised decorrelated join. Not expressible in DBPL source, so
/// it cannot clash with user attribute names.
const KEY_MARKER: &str = "\u{394}key";

/// Profitability bound for multi-binding decorrelation: the estimated
/// inner-join cardinality may exceed the summed input cardinalities by
/// at most this factor, otherwise the rewrite would *materialise* a
/// blow-up the per-combination scan only ever streams.
const DECORR_JOIN_BLOWUP: usize = 8;

/// Minimum scan-side cardinality before a branch is dispatched to the
/// partition-parallel executor ([`dc_exec`]). Below it the whole branch
/// evaluates in tens of microseconds and the fixed parallel overhead —
/// one partitioning pass, `threads` thread spawns, and a shard-order
/// merge — costs more than it saves; above it per-shard probe work
/// dominates and scales with the worker count. Overridable per
/// evaluator ([`Evaluator::with_parallel_threshold`]) so differential
/// tests can force the parallel path on small inputs.
pub const PARALLEL_SCAN_THRESHOLD: usize = 2048;

/// A bound tuple variable: name, current tuple, and the schema used to
/// resolve `var.attr` references.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Variable name.
    pub var: Var,
    /// Bound tuple.
    pub tuple: Tuple,
    /// Schema of the range the variable iterates over.
    pub schema: Schema,
}

/// Infer the base domain of a value (for target-schema synthesis).
pub fn value_domain(v: &Value) -> Domain {
    match v {
        Value::Int(_) => Domain::Int,
        Value::Card(_) => Domain::Card,
        Value::Str(_) => Domain::Str,
        Value::Bool(_) => Domain::Bool,
    }
}

/// The nested-loop reference evaluator.
///
/// An `Evaluator` caches binding-free range values (e.g. a base relation
/// referenced inside a quantifier) for the duration of its lifetime;
/// create a fresh evaluator whenever the underlying relations may have
/// changed (the fixpoint engine creates one per iteration).
pub struct Evaluator<'a> {
    catalog: &'a dyn Catalog,
    /// Stack of selector-application parameter frames.
    param_frames: Vec<FxHashMap<String, Value>>,
    /// Cache of binding-free range values.
    range_cache: FxHashMap<RangeExpr, Relation>,
    /// Cache of indexes built over binding-free ranges.
    index_cache: FxHashMap<(RangeExpr, Vec<usize>), Arc<HashIndex>>,
    /// Cache of statistics collected over binding-free ranges.
    stats_cache: FxHashMap<RangeExpr, RelationStats>,
    /// Cache of decorrelated correlated quantified ranges, keyed by the
    /// range's syntax (the split depends only on it). `None` records a
    /// range whose decorrelation was refused or abandoned, so the
    /// analysis runs once per range, not once per outer combination.
    decorr_cache: FxHashMap<RangeExpr, Option<Arc<DecorrEntry>>>,
    /// Cache of quantifier probe plans, keyed by (var, existential,
    /// body syntax): the NNF derivation clones and rewrites the body,
    /// which must not be paid per outer combination. A linear scan —
    /// entries are bounded by the query's quantifier sites — so lookups
    /// allocate nothing. Purely syntactic; survives version bumps.
    quant_plan_cache: Vec<(Var, bool, Formula, Option<Arc<joinplan::QuantPlan>>)>,
    /// Per-plan-depth probe-key buffers, reused across probes.
    probe_scratch: Vec<Vec<Value>>,
    /// Disable the index-nested-loop path (reference semantics).
    nested_loop_only: bool,
    /// Worker count for partition-parallel branch execution; `1` is the
    /// exact sequential path (no jobs are ever built).
    threads: usize,
    /// Scan-side cardinality floor for parallel dispatch — see
    /// [`PARALLEL_SCAN_THRESHOLD`].
    parallel_threshold: usize,
    /// The armed budget governing this evaluation, if any: ticked at
    /// the executor leaves (and handed to worker shards through the
    /// job), with emitted tuples counted against its ceiling.
    budget: Option<Meter>,
    /// The catalog data version the syntax-keyed caches were filled
    /// under; on mismatch every cache is dropped (mid-solve delta
    /// commits, see [`Catalog::version`]).
    cache_version: u64,
    /// Planner trace notes (demotions, abandoned rewrites), deduplicated.
    plan_notes: Vec<String>,
    /// Dedup set for `plan_notes`.
    noted: FxHashSet<String>,
    /// Cheap dedup keys (attr, reason kind, site fingerprint) for notes
    /// emitted on per-combination paths — checked before any string is
    /// built, so each distinct demotion site is reported exactly once.
    noted_keys: Vec<(String, u8, u64)>,
    /// Typed planner trace: every demotion note's [`PlanEvent`] plus
    /// one access-path event per planned branch site (the latter never
    /// enter `plan_notes`, which stays a fallback-only trace).
    plan_events: Vec<PlanEvent>,
    /// Branch fingerprints whose access path was already recorded, so
    /// per-combination re-plans (nested set-formers) report once.
    access_sites: Vec<u64>,
    /// Metrics registry to count planner decisions into, if the owner
    /// (database, solver, session) threads one through.
    metrics: Option<std::sync::Arc<MetricsRegistry>>,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator over a catalog.
    pub fn new(catalog: &'a dyn Catalog) -> Evaluator<'a> {
        Evaluator {
            catalog,
            param_frames: Vec::new(),
            range_cache: FxHashMap::default(),
            index_cache: FxHashMap::default(),
            stats_cache: FxHashMap::default(),
            decorr_cache: FxHashMap::default(),
            quant_plan_cache: Vec::new(),
            probe_scratch: Vec::new(),
            nested_loop_only: false,
            threads: 1,
            parallel_threshold: PARALLEL_SCAN_THRESHOLD,
            budget: None,
            cache_version: catalog.version(),
            plan_notes: Vec::new(),
            noted: FxHashSet::default(),
            noted_keys: Vec::new(),
            plan_events: Vec::new(),
            access_sites: Vec::new(),
            metrics: None,
        }
    }

    /// Force the reference nested-loop path for every branch (no join
    /// planning, no index probes, no quantifier decorrelation). Used by
    /// differential tests and as the measured pre-optimization baseline.
    pub fn force_nested_loop(mut self) -> Evaluator<'a> {
        self.nested_loop_only = true;
        self
    }

    /// Execute eligible set-former branches through the
    /// partition-parallel executor with `threads` workers (resolve a
    /// configuration knob through [`dc_exec::thread_count`] first).
    /// `threads <= 1` keeps the exact sequential path. Results are
    /// identical for every worker count — see the module docs for the
    /// determinism argument.
    pub fn with_threads(mut self, threads: usize) -> Evaluator<'a> {
        self.threads = threads.max(1);
        self
    }

    /// Override the scan-side cardinality floor for parallel dispatch
    /// (default [`PARALLEL_SCAN_THRESHOLD`]). Differential tests lower
    /// it to force the parallel path on small inputs.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Evaluator<'a> {
        self.parallel_threshold = threshold;
        self
    }

    /// Govern this evaluation with an armed budget [`Meter`]: the
    /// executor leaves tick it (observing deadlines, cancellation, and
    /// the tuple ceiling), worker shards share it through the job, and
    /// trips surface as [`EvalError::Solve`]. Clones share one gauge,
    /// so a solver hands the *same* meter to every branch evaluator of
    /// one solve.
    pub fn with_meter(mut self, meter: Meter) -> Evaluator<'a> {
        self.budget = Some(meter);
        self
    }

    /// The meter installed by [`Evaluator::with_meter`], if any.
    pub fn meter(&self) -> Option<&Meter> {
        self.budget.as_ref()
    }

    /// Count planner decisions (probe/scan plans, quantifier probes,
    /// decorrelation builds and refusals) into `metrics`. The owner —
    /// database, solver task, session — threads its registry through
    /// so the counts land in one place regardless of which evaluator
    /// did the planning.
    pub fn with_metrics(mut self, metrics: std::sync::Arc<MetricsRegistry>) -> Evaluator<'a> {
        self.metrics = Some(metrics);
        self
    }

    /// The planner trace: one line per demotion or abandoned rewrite
    /// (deduplicated), in first-occurrence order. Empty when every
    /// planned access path was realised as planned.
    pub fn plan_notes(&self) -> &[String] {
        &self.plan_notes
    }

    /// Drain the planner trace — see [`Evaluator::plan_notes`].
    pub fn take_plan_notes(&mut self) -> Vec<String> {
        self.noted.clear();
        self.noted_keys.clear();
        std::mem::take(&mut self.plan_notes)
    }

    /// The typed planner trace: every demotion/refusal in
    /// [`Evaluator::plan_notes`] as a structured [`PlanEvent`], plus
    /// one [`PlanEvent::AccessPath`] per planned branch site (access
    /// paths are decisions, not fallbacks, so they do not appear in
    /// the string notes).
    pub fn plan_events(&self) -> &[PlanEvent] {
        &self.plan_events
    }

    /// Drain the typed planner trace — see [`Evaluator::plan_events`].
    pub fn take_plan_events(&mut self) -> Vec<PlanEvent> {
        self.access_sites.clear();
        std::mem::take(&mut self.plan_events)
    }

    /// Record a demotion/refusal event: deduplicated by rendered
    /// content (which keys the legacy string notes), mirrored into the
    /// string trace, and emitted as a `plan` trace event when a trace
    /// sink is armed.
    fn plan_event(&mut self, ev: PlanEvent) {
        let note = ev.to_string();
        if self.noted.insert(note.clone()) {
            dc_trace::event(SpanKind::Plan, || (note.clone(), Vec::new()));
            self.plan_notes.push(note);
            self.plan_events.push(ev);
        }
    }

    /// Record a demotion event from a per-combination path: dedup on
    /// (attr, reason kind, site) *before* building any string, so a
    /// demotion repeated across thousands of outer combinations costs a
    /// scan of a tiny vec instead of a format per probe, while distinct
    /// sites (see [`site_fingerprint`]) still report individually.
    fn plan_event_keyed(
        &mut self,
        attr: &str,
        reason: QuantDemotionReason,
        site: u64,
        make: impl FnOnce() -> PlanEvent,
    ) {
        let reason = reason as u8;
        if self
            .noted_keys
            .iter()
            .any(|(a, r, s)| *r == reason && *s == site && a == attr)
        {
            return;
        }
        self.noted_keys.push((attr.to_string(), reason, site));
        self.plan_event(make());
    }

    /// Record a decorrelation refusal (typed event + metrics counter).
    fn decorr_refused(&mut self, reason: DecorrRefusalReason, range: &RangeExpr) {
        if let Some(m) = &self.metrics {
            m.inc(Counter::DecorrRefusals);
        }
        self.plan_event(PlanEvent::DecorrRefusal {
            reason,
            range: range.to_string(),
        });
    }

    /// Record the access path chosen for one planned branch — once per
    /// distinct branch site, so per-combination re-plans (set-formers
    /// nested under quantifiers) pay a fingerprint lookup, not an
    /// event build.
    fn note_access_path(
        &mut self,
        branch: &Branch,
        plan: &BranchPlan,
        rationale: &[StepRationale],
        schemas: &[&Schema],
        stats: &[RelationStats],
    ) {
        let site = branch_fingerprint(branch);
        if self.access_sites.contains(&site) {
            return;
        }
        self.access_sites.push(site);
        if let Some(m) = &self.metrics {
            m.inc(if plan.has_probe() {
                Counter::ProbePlans
            } else {
                Counter::ScanPlans
            });
        }
        let ev = PlanEvent::access_path_for(branch, plan, rationale, schemas, stats);
        dc_trace::event(SpanKind::Plan, || (ev.to_string(), Vec::new()));
        self.plan_events.push(ev);
    }

    /// Drop every syntax-keyed cache if the catalog's data version moved
    /// since the caches were filled (a peer delta committed mid-solve).
    /// Cached range values, indexes, statistics, and decorrelated
    /// ranges all describe one consistent catalog snapshot; after a
    /// commit they describe a stale one and must be rebuilt on demand.
    fn validate_caches(&mut self) {
        let v = self.catalog.version();
        if v != self.cache_version {
            self.range_cache.clear();
            self.index_cache.clear();
            self.stats_cache.clear();
            self.decorr_cache.clear();
            self.cache_version = v;
        }
    }

    /// Evaluate a closed range expression (a query).
    pub fn eval(&mut self, range: &RangeExpr) -> Result<Relation, EvalError> {
        let mut bindings = Vec::new();
        self.eval_range(range, &mut bindings)
    }

    /// Evaluate a range expression under the given bindings.
    pub fn eval_range(
        &mut self,
        range: &RangeExpr,
        bindings: &mut Vec<Binding>,
    ) -> Result<Relation, EvalError> {
        let cacheable = self.param_frames.is_empty() && is_binding_free(range);
        if cacheable {
            self.validate_caches();
            if let Some(hit) = self.range_cache.get(range) {
                return Ok(hit.clone());
            }
        }
        let out = self.eval_range_uncached(range, bindings)?;
        if cacheable {
            self.range_cache.insert(range.clone(), out.clone());
        }
        Ok(out)
    }

    fn eval_range_uncached(
        &mut self,
        range: &RangeExpr,
        bindings: &mut Vec<Binding>,
    ) -> Result<Relation, EvalError> {
        match range {
            // An owned COW handle sharing the catalog's storage — a
            // pointer bump, not a tuple-set copy.
            RangeExpr::Rel(name) => self.catalog.relation(name),
            RangeExpr::Selected {
                base,
                selector,
                args,
            } => {
                let base_rel = self.eval_range(base, bindings)?;
                self.apply_selector(base_rel, selector, args, bindings)
            }
            RangeExpr::Constructed {
                base,
                constructor,
                args,
                scalar_args,
            } => {
                let base_rel = self.eval_range(base, bindings)?;
                let mut arg_rels = Vec::with_capacity(args.len());
                for a in args {
                    arg_rels.push(self.eval_range(a, bindings)?);
                }
                let mut scalars = Vec::with_capacity(scalar_args.len());
                for s in scalar_args {
                    scalars.push(self.eval_scalar(s, bindings)?);
                }
                self.catalog
                    .apply_constructor(base_rel, constructor, arg_rels, scalars)
            }
            RangeExpr::SetFormer(sf) => self.eval_set_former(sf, bindings),
        }
    }

    /// Selector application `base[sel(args)]`: filter `base` by the
    /// selector predicate with the element variable bound to each tuple
    /// and the formal parameters bound to the evaluated arguments.
    pub fn apply_selector(
        &mut self,
        base: Relation,
        selector: &str,
        args: &[ScalarExpr],
        bindings: &mut Vec<Binding>,
    ) -> Result<Relation, EvalError> {
        let def = self.catalog.selector(selector)?.clone();
        if args.len() != def.params.len() {
            return Err(EvalError::ArityMismatch {
                name: def.name.clone(),
                expected: def.params.len(),
                actual: args.len(),
            });
        }
        let mut frame = FxHashMap::default();
        for ((pname, pdom), arg) in def.params.iter().zip(args) {
            let v = self.eval_scalar(arg, bindings)?;
            pdom.check(&v)?;
            frame.insert(pname.clone(), v);
        }
        self.param_frames.push(frame);
        // The selector body is evaluated in its own scope: only the
        // element variable is visible (plus catalog relations).
        let mut inner: Vec<Binding> = Vec::with_capacity(1);
        let mut out = Relation::new(base.schema().clone());
        let result: Result<(), EvalError> = (|| {
            for t in base.iter() {
                inner.push(Binding {
                    var: def.element_var.clone(),
                    tuple: t.clone(),
                    schema: base.schema().clone(),
                });
                let keep = self.eval_formula(&def.predicate, &mut inner);
                inner.pop();
                if keep? {
                    out.insert_unchecked(t.clone())?;
                }
            }
            Ok(())
        })();
        self.param_frames.pop();
        result?;
        Ok(out)
    }

    fn eval_set_former(
        &mut self,
        sf: &SetFormer,
        bindings: &mut Vec<Binding>,
    ) -> Result<Relation, EvalError> {
        if sf.branches.is_empty() {
            return Err(EvalError::Other("set former with no branches".into()));
        }
        let mut result: Option<Relation> = None;
        for branch in &sf.branches {
            // Ranges are evaluated in the enclosing scope, once per
            // branch (not per combination).
            let mut ranges = Vec::with_capacity(branch.bindings.len());
            for (_, r) in &branch.bindings {
                ranges.push(self.eval_range(r, bindings)?);
            }
            let schema = self.branch_schema(branch, &ranges, bindings)?;
            let out = match &mut result {
                none @ None => none.insert(Relation::new(schema)),
                Some(rel) => {
                    if !rel.schema().union_compatible(&schema) {
                        return Err(EvalError::Type(dc_value::TypeError::SchemaMismatch {
                            context: "set-former branches are not union-compatible".into(),
                        }));
                    }
                    rel
                }
            };
            // `out` cannot be borrowed across the recursive loop that
            // needs `&mut self`; collect into a scratch relation.
            let mut scratch = Relation::new(out.schema().clone());
            self.eval_branch(branch, &ranges, bindings, &mut scratch)?;
            dc_relation::algebra::union_into(out, &scratch)?;
        }
        // The empty-branches guard above filled `result` on the first
        // iteration; report rather than panic if that ever changes.
        result.ok_or_else(|| EvalError::Other("set former produced no result relation".into()))
    }

    /// Evaluate one branch: index-nested-loop when the predicate offers
    /// equality atoms, reference nested loops otherwise.
    fn eval_branch(
        &mut self,
        branch: &Branch,
        ranges: &[Relation],
        bindings: &mut Vec<Binding>,
        out: &mut Relation,
    ) -> Result<(), EvalError> {
        // Zero combinations — both paths would emit nothing.
        if ranges.iter().any(Relation::is_empty) && !branch.bindings.is_empty() {
            return Ok(());
        }
        if !self.nested_loop_only && !branch.bindings.is_empty() {
            // Cheap AST walk first: atom-free branches go straight to
            // the reference loop without paying any stats scan.
            let atoms = joinplan::extract_eq_atoms(branch);
            if !atoms.is_empty() {
                let schemas: Vec<&Schema> = ranges.iter().map(Relation::schema).collect();
                // Distinct-value statistics are only worth obtaining
                // for ranges the planner may probe — and even for
                // those, catalogs that maintain statistics next to
                // their indexes (the fixpoint solver, the database)
                // serve them in O(arity), so the O(|R|) collection
                // pass only runs for anonymous, non-cacheable ranges.
                let probed: FxHashSet<usize> = atoms.iter().map(|a| a.position).collect();
                let stats: Vec<RelationStats> = ranges
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        if probed.contains(&i) {
                            self.range_stats(&branch.bindings[i].1, r)
                        } else {
                            RelationStats {
                                cardinality: r.len(),
                                distinct: Vec::new(),
                            }
                        }
                    })
                    .collect();
                let (plan, rationale) = joinplan::plan_branch_traced(branch, &schemas, &stats);
                self.note_access_path(branch, &plan, &rationale, &schemas, &stats);
                if plan.has_probe() {
                    if let Some(steps) = self.compile_plan(branch, &plan, ranges, bindings)? {
                        if let Some(job) =
                            self.parallel_job(branch, &steps, ranges, bindings, out.schema())
                        {
                            match dc_exec::execute(&job, self.threads) {
                                Ok(part) => {
                                    dc_relation::algebra::union_into(out, &part)
                                        .map_err(EvalError::from)?;
                                    return Ok(());
                                }
                                // Graceful degradation: a panicking
                                // worker must never change the answer
                                // or kill the process. Retry the branch
                                // once on the sequential reference path
                                // — nothing was merged into `out`, so
                                // the retry starts clean. A second
                                // failure there is a real error and
                                // propagates.
                                Err(dc_exec::ExecError::WorkerPanic { message }) => {
                                    if let Some(m) = &self.budget {
                                        m.note_retried();
                                    }
                                    self.plan_event(PlanEvent::ParallelDegraded {
                                        message: message.clone(),
                                    });
                                    let r =
                                        self.exec_plan(branch, &steps, ranges, 0, bindings, out);
                                    if r.is_ok() {
                                        if let Some(m) = &self.budget {
                                            m.note_degraded();
                                        }
                                    }
                                    return r;
                                }
                                Err(e) => return Err(exec_to_eval_error(e)),
                            }
                        }
                        return self.exec_plan(branch, &steps, ranges, 0, bindings, out);
                    }
                }
            }
        }
        self.loop_branch(branch, ranges, 0, bindings, out)
    }

    /// Lower a logical plan to executable steps: resolve attribute
    /// positions, evaluate free key sources to values, bind probe
    /// indexes. Atoms that cannot be realised safely — unknown
    /// attributes, unresolvable parameters/outer variables, or keys
    /// whose base type differs from the probed column (where hash
    /// equality and `=` semantics diverge) — are demoted back to the
    /// residual predicate. Returns `Ok(None)` when no probe survives;
    /// the only error channel is index acquisition (a governed abort or
    /// an injected fault).
    fn compile_plan(
        &mut self,
        branch: &Branch,
        plan: &BranchPlan,
        ranges: &[Relation],
        bindings: &Vec<Binding>,
    ) -> Result<Option<Vec<CompiledStep>>, EvalError> {
        let base_slot = bindings.len();
        let mut slot_of = vec![usize::MAX; branch.bindings.len()];
        let mut steps = Vec::with_capacity(plan.steps.len());
        let mut any_probe = false;
        for (i, step) in plan.steps.iter().enumerate() {
            slot_of[step.position] = base_slot + i;
            let access = match &step.access {
                Access::Scan => CompiledAccess::Scan,
                Access::Probe(atoms) => {
                    let schema = ranges[step.position].schema();
                    let mut positions = Vec::with_capacity(atoms.len());
                    let mut keys = Vec::with_capacity(atoms.len());
                    for atom in atoms {
                        let Ok(probed_pos) = schema.position(&atom.attr) else {
                            continue;
                        };
                        let probed_base = schema.domain(probed_pos).base();
                        match &atom.source {
                            KeySource::Free(expr) => {
                                let Ok(v) = self.eval_scalar(expr, bindings) else {
                                    continue;
                                };
                                if value_domain(&v) != probed_base {
                                    continue;
                                }
                                positions.push(probed_pos);
                                keys.push(CompiledKey::Fixed(v));
                            }
                            KeySource::Binding { position, attr } => {
                                let source_schema = ranges[*position].schema();
                                let Ok(source_pos) = source_schema.position(attr) else {
                                    continue;
                                };
                                if source_schema.domain(source_pos).base() != probed_base {
                                    continue;
                                }
                                positions.push(probed_pos);
                                keys.push(CompiledKey::FromBinding {
                                    slot: slot_of[*position],
                                    attr_pos: source_pos,
                                });
                            }
                        }
                    }
                    if keys.is_empty() {
                        CompiledAccess::Scan
                    } else {
                        any_probe = true;
                        let index = self.obtain_index(
                            &branch.bindings[step.position].1,
                            &ranges[step.position],
                            &positions,
                        )?;
                        CompiledAccess::Probe { index, keys }
                    }
                }
            };
            steps.push(CompiledStep {
                position: step.position,
                access,
            });
        }
        Ok(any_probe.then_some(steps))
    }

    /// Lower a compiled branch plan into a self-contained
    /// [`dc_exec::Job`], or `None` when the branch must stay on the
    /// sequential executor. Eligibility:
    ///
    /// * more than one worker is configured and the first step is a
    ///   scan whose cardinality clears the dispatch threshold (probes
    ///   amortise per scan tuple, so the scan side is what parallelism
    ///   divides);
    /// * the full residual predicate and the target are *pure* —
    ///   comparisons, boolean connectives, and arithmetic over the
    ///   bound tuples. Parameters and outer-variable attributes are
    ///   resolved to constants here, once, which is exactly their
    ///   per-branch-constant meaning on the sequential path;
    /// * every name resolves. An unresolvable attribute, parameter, or
    ///   variable falls back to the sequential path so the reference
    ///   error surfaces from the reference machinery, not from a
    ///   half-lowered job.
    ///
    /// Workers only ever see the job — relations, shared indexes, and
    /// the pure IR — never the catalog, so interior mutability
    /// ([`std::cell::RefCell`] solver state, database caches) stays on
    /// this thread.
    // `slot_of` expects: `compile_plan` emits exactly one step per
    // binding position (it iterates `plan.steps`, which `plan_branch`
    // builds as a permutation of the positions), so every lookup hits.
    #[allow(clippy::expect_used)]
    fn parallel_job(
        &mut self,
        branch: &Branch,
        steps: &[CompiledStep],
        ranges: &[Relation],
        bindings: &Vec<Binding>,
        out_schema: &Schema,
    ) -> Option<dc_exec::Job> {
        if self.threads <= 1 {
            return None;
        }
        let first = steps.first()?;
        if !matches!(first.access, CompiledAccess::Scan) {
            return None;
        }
        if ranges[first.position].len() < self.parallel_threshold {
            return None;
        }
        let base_slot = bindings.len();
        // Plan slot of each binding position (slot i = step i).
        let slots: Vec<(usize, usize)> = steps
            .iter()
            .enumerate()
            .map(|(i, s)| (s.position, i))
            .collect();
        let slot_of = |position: usize| -> usize {
            slots
                .iter()
                .find(|(p, _)| *p == position)
                .expect("every binding position has a plan step")
                .1
        };
        let filter = self.pure_formula(&branch.predicate, branch, ranges, bindings, &slot_of)?;
        let target = match &branch.target {
            Target::Var(v) => {
                let pos = branch.bindings.iter().position(|(bv, _)| bv == v)?;
                dc_exec::Target::Slot(slot_of(pos))
            }
            Target::Tuple(exprs) => {
                let mut lowered = Vec::with_capacity(exprs.len());
                for e in exprs {
                    lowered.push(self.pure_scalar(e, branch, ranges, bindings, &slot_of)?);
                }
                dc_exec::Target::Tuple(lowered)
            }
        };
        let mut job_steps = Vec::with_capacity(steps.len() - 1);
        for step in &steps[1..] {
            job_steps.push(match &step.access {
                // A probe the compiler demoted: the worker enumerates
                // the whole (shared-handle) range at this depth.
                CompiledAccess::Scan => {
                    dc_exec::Step::Scan(ranges[step.position].iter().cloned().collect())
                }
                CompiledAccess::Probe { index, keys } => dc_exec::Step::Probe {
                    index: index.clone(),
                    keys: keys
                        .iter()
                        .map(|k| match k {
                            CompiledKey::Fixed(v) => dc_exec::Key::Fixed(v.clone()),
                            CompiledKey::FromBinding { slot, attr_pos } => dc_exec::Key::FromSlot {
                                slot: slot - base_slot,
                                pos: *attr_pos,
                            },
                        })
                        .collect(),
                },
            });
        }
        Some(dc_exec::Job {
            schema: out_schema.clone(),
            scan: ranges[first.position].clone(),
            steps: job_steps,
            filter,
            target,
            budget: self.budget.clone(),
        })
    }

    /// Lower a formula into the pure predicate IR, or `None` if it
    /// needs evaluator machinery (quantifiers, membership, ranges).
    fn pure_formula(
        &mut self,
        f: &Formula,
        branch: &Branch,
        ranges: &[Relation],
        bindings: &Vec<Binding>,
        slot_of: &dyn Fn(usize) -> usize,
    ) -> Option<dc_exec::BoolExpr> {
        Some(match f {
            Formula::True => dc_exec::BoolExpr::Const(true),
            Formula::False => dc_exec::BoolExpr::Const(false),
            Formula::Cmp(l, op, r) => dc_exec::BoolExpr::Cmp(
                self.pure_scalar(l, branch, ranges, bindings, slot_of)?,
                match op {
                    CmpOp::Eq => dc_exec::CmpOp::Eq,
                    CmpOp::Ne => dc_exec::CmpOp::Ne,
                    CmpOp::Lt => dc_exec::CmpOp::Lt,
                    CmpOp::Le => dc_exec::CmpOp::Le,
                    CmpOp::Gt => dc_exec::CmpOp::Gt,
                    CmpOp::Ge => dc_exec::CmpOp::Ge,
                },
                self.pure_scalar(r, branch, ranges, bindings, slot_of)?,
            ),
            Formula::And(a, b) => dc_exec::BoolExpr::And(
                Box::new(self.pure_formula(a, branch, ranges, bindings, slot_of)?),
                Box::new(self.pure_formula(b, branch, ranges, bindings, slot_of)?),
            ),
            Formula::Or(a, b) => dc_exec::BoolExpr::Or(
                Box::new(self.pure_formula(a, branch, ranges, bindings, slot_of)?),
                Box::new(self.pure_formula(b, branch, ranges, bindings, slot_of)?),
            ),
            Formula::Not(inner) => dc_exec::BoolExpr::Not(Box::new(
                self.pure_formula(inner, branch, ranges, bindings, slot_of)?,
            )),
            // Quantifiers, membership, and tuple-in need range
            // evaluation and catalog access — sequential path.
            Formula::Some(..) | Formula::All(..) | Formula::Member(..) | Formula::TupleIn(..) => {
                return None
            }
        })
    }

    /// Lower a scalar expression into the pure value IR. Branch-binding
    /// attributes become slot field reads; outer-variable attributes
    /// and parameters — constant for the whole branch evaluation —
    /// resolve to constants now. Unresolvable names return `None` (the
    /// sequential path owns the reference error).
    fn pure_scalar(
        &mut self,
        e: &ScalarExpr,
        branch: &Branch,
        ranges: &[Relation],
        bindings: &Vec<Binding>,
        slot_of: &dyn Fn(usize) -> usize,
    ) -> Option<dc_exec::ValExpr> {
        Some(match e {
            ScalarExpr::Const(v) => dc_exec::ValExpr::Const(v.clone()),
            ScalarExpr::Attr(v, attr) => {
                if let Some(pos) = branch.bindings.iter().position(|(bv, _)| bv == v) {
                    let field = ranges[pos].schema().position(attr).ok()?;
                    dc_exec::ValExpr::Field {
                        slot: slot_of(pos),
                        pos: field,
                    }
                } else {
                    let b = lookup(bindings, v).ok()?;
                    let field = b.schema.position(attr).ok()?;
                    dc_exec::ValExpr::Const(b.tuple.get(field).clone())
                }
            }
            ScalarExpr::Param(p) => dc_exec::ValExpr::Const(self.resolve_param(p).ok()?),
            ScalarExpr::Arith(l, op, r) => dc_exec::ValExpr::Arith(
                Box::new(self.pure_scalar(l, branch, ranges, bindings, slot_of)?),
                match op {
                    crate::ast::ArithOp::Add => dc_exec::ArithOp::Add,
                    crate::ast::ArithOp::Sub => dc_exec::ArithOp::Sub,
                    crate::ast::ArithOp::Mul => dc_exec::ArithOp::Mul,
                    crate::ast::ArithOp::Div => dc_exec::ArithOp::Div,
                    crate::ast::ArithOp::Mod => dc_exec::ArithOp::Mod,
                },
                Box::new(self.pure_scalar(r, branch, ranges, bindings, slot_of)?),
            ),
        })
    }

    /// Find or build a hash index over `rel` on `positions`. Catalogs
    /// that maintain indexes (the fixpoint solver) are consulted first
    /// for named ranges; binding-free ranges get an evaluator-lifetime
    /// cache; anything else builds a throwaway index (still one O(|rel|)
    /// pass — the same cost as the single scan it replaces).
    fn obtain_index(
        &mut self,
        range: &RangeExpr,
        rel: &Relation,
        positions: &[usize],
    ) -> Result<Arc<HashIndex>, EvalError> {
        // Fallible only through the `index_build` failpoint
        // (fault-injection testing); the build itself cannot fail.
        fail::check(Site::IndexBuild)?;
        if let RangeExpr::Rel(name) = range {
            if let Some(idx) = self.catalog.index(name, positions) {
                debug_assert_eq!(idx.len(), rel.len(), "catalog index out of sync for {name}");
                return Ok(idx);
            }
        }
        if self.param_frames.is_empty() && is_binding_free(range) {
            self.validate_caches();
            let key = (range.clone(), positions.to_vec());
            if let Some(hit) = self.index_cache.get(&key) {
                return Ok(hit.clone());
            }
            let idx = Arc::new(HashIndex::build(rel, positions.to_vec()));
            self.index_cache.insert(key, idx.clone());
            return Ok(idx);
        }
        Ok(Arc::new(HashIndex::build(rel, positions.to_vec())))
    }

    /// Statistics for a probed range. Catalogs that maintain statistics
    /// incrementally (next to their indexes) answer in O(arity);
    /// binding-free ranges get an evaluator-lifetime cache; anything
    /// else pays the one-pass collection.
    fn range_stats(&mut self, range: &RangeExpr, rel: &Relation) -> RelationStats {
        if let RangeExpr::Rel(name) = range {
            if let Some(s) = self.catalog.stats(name) {
                debug_assert_eq!(
                    s.cardinality,
                    rel.len(),
                    "catalog stats out of sync for {name}"
                );
                return (*s).clone();
            }
        }
        if self.param_frames.is_empty() && is_binding_free(range) {
            self.validate_caches();
            if let Some(hit) = self.stats_cache.get(range) {
                return hit.clone();
            }
            let s = RelationStats::collect(rel);
            self.stats_cache.insert(range.clone(), s.clone());
            return s;
        }
        RelationStats::collect(rel)
    }

    /// Try to decide a quantified subformula through an index existence
    /// probe instead of a scan. `Ok(None)` means "not probe-able —
    /// fall back to the reference scan"; `Ok(Some(b))` is the decided
    /// truth value.
    ///
    /// The probe follows a [`joinplan::plan_quant_probe`] plan:
    ///
    /// * [`QuantMode::Witness`] (`SOME`) — every body witness satisfies
    ///   the atoms, so the residual pass touches bucket matches instead
    ///   of the whole range.
    /// * [`QuantMode::Falsifier`] (`ALL`, implication-shaped bodies) —
    ///   the atoms come from the NNF of the body's negation, so every
    ///   potential counterexample lies inside the bucket; tuples outside
    ///   it satisfy the body by construction and are never visited.
    /// * [`QuantMode::Covering`] (`ALL`, conjunctive bodies) — any tuple
    ///   *outside* the bucket falsifies an equality conjunct and with it
    ///   the body, so the quantifier holds only if the bucket covers the
    ///   whole range — checked by cardinality before the residual pass.
    ///
    /// Demotion rules mirror [`Evaluator::compile_plan`]: keys that are
    /// unresolvable or whose base type differs from the probed column
    /// drop out (leaving a planner trace note), and if none survive the
    /// scan fallback reproduces reference semantics (including error
    /// semantics) exactly. Probes are only attempted where the index
    /// amortises — named relations (catalog-maintained indexes) and
    /// binding-free ranges (evaluator cache); a throwaway index per
    /// evaluation would cost the same pass as the scan it replaces.
    /// Correlated ranges are handled before this probe by
    /// [`Evaluator::quant_decorrelate`].
    fn quant_probe(
        &mut self,
        var: &Var,
        range: &RangeExpr,
        rel: &Relation,
        body: &Formula,
        bindings: &mut Vec<Binding>,
        existential: bool,
    ) -> Result<Option<bool>, EvalError> {
        use joinplan::QuantMode;
        if self.nested_loop_only || rel.is_empty() {
            return Ok(None);
        }
        let cacheable = self.param_frames.is_empty() && is_binding_free(range);
        if !cacheable && !matches!(range, RangeExpr::Rel(_)) {
            return Ok(None);
        }
        let Some(plan) = self.quant_plan(var, body, existential) else {
            return Ok(None);
        };
        let schema = rel.schema();
        let mut positions = Vec::with_capacity(plan.atoms.len());
        let mut key = Vec::with_capacity(plan.atoms.len());
        for atom in &plan.atoms {
            let Ok(pos) = schema.position(&atom.attr) else {
                // E.g. the range is a selector/set-former view that no
                // longer carries the referenced field.
                self.plan_event_keyed(
                    &atom.attr,
                    QuantDemotionReason::AttrNotInSchema,
                    site_fingerprint(range),
                    || PlanEvent::QuantDemotion {
                        attr: atom.attr.clone(),
                        reason: QuantDemotionReason::AttrNotInSchema,
                        range: range.to_string(),
                        key: String::new(),
                    },
                );
                continue;
            };
            let Ok(v) = self.eval_scalar(&atom.key, bindings) else {
                self.plan_event_keyed(
                    &atom.attr,
                    QuantDemotionReason::KeyUnresolvable,
                    site_fingerprint(range),
                    || PlanEvent::QuantDemotion {
                        attr: atom.attr.clone(),
                        reason: QuantDemotionReason::KeyUnresolvable,
                        range: range.to_string(),
                        key: atom.key.to_string(),
                    },
                );
                continue;
            };
            if value_domain(&v) != schema.domain(pos).base() {
                self.plan_event_keyed(
                    &atom.attr,
                    QuantDemotionReason::KeyTypeMismatch,
                    site_fingerprint(range),
                    || PlanEvent::QuantDemotion {
                        attr: atom.attr.clone(),
                        reason: QuantDemotionReason::KeyTypeMismatch,
                        range: range.to_string(),
                        key: String::new(),
                    },
                );
                continue;
            }
            positions.push(pos);
            key.push(v);
        }
        if positions.is_empty() {
            return Ok(None);
        }
        let index = if cacheable {
            // Catalog-maintained or evaluator-cached — `obtain_index`
            // never builds a throwaway on this path.
            self.obtain_index(range, rel, &positions)?
        } else {
            // Named range under a parameter frame: only a
            // catalog-maintained index amortises; building one per
            // evaluation would cost the scan it replaces, so fall back.
            let RangeExpr::Rel(name) = range else {
                unreachable!("checked above");
            };
            match self.catalog.index(name, &positions) {
                Some(idx) => {
                    debug_assert_eq!(idx.len(), rel.len(), "catalog index out of sync for {name}");
                    idx
                }
                None => return Ok(None),
            }
        };
        let hits = index.probe_slice(&key);
        if plan.mode == QuantMode::Covering && hits.len() != rel.len() {
            return Ok(Some(false));
        }
        self.decide_over_bucket(var, rel.schema(), body, hits, bindings, existential)
            .map(Some)
    }

    /// Plan (or fetch the cached plan for) a quantifier probe — see
    /// [`joinplan::plan_quant_probe`]. The NNF pre-pass clones and
    /// rewrites the body, so plans are derived once per quantifier site
    /// and shared across all outer combinations.
    fn quant_plan(
        &mut self,
        var: &Var,
        body: &Formula,
        existential: bool,
    ) -> Option<Arc<joinplan::QuantPlan>> {
        if let Some((_, _, _, plan)) = self
            .quant_plan_cache
            .iter()
            .find(|(v, e, b, _)| *e == existential && v == var && b == body)
        {
            return plan.clone();
        }
        let plan = joinplan::plan_quant_probe(var, body, existential).map(Arc::new);
        // Counted here, once per quantifier site (the plan-cache fill),
        // not per outer combination.
        if let Some(m) = &self.metrics {
            m.inc(if plan.is_some() {
                Counter::QuantProbes
            } else {
                Counter::QuantScans
            });
        }
        self.quant_plan_cache
            .push((var.clone(), existential, body.clone(), plan.clone()));
        plan
    }

    /// Shared residual pass of both quantifier probe paths: evaluate the
    /// **full** body over the bucket's tuples (reusing one binding slot)
    /// and decide the quantifier — a body witness decides `SOME`, a body
    /// falsifier decides `ALL`, an exhausted bucket decides the dual.
    fn decide_over_bucket<'t>(
        &mut self,
        var: &Var,
        schema: &Schema,
        body: &Formula,
        hits: impl IntoIterator<Item = &'t Tuple>,
        bindings: &mut Vec<Binding>,
        existential: bool,
    ) -> Result<bool, EvalError> {
        let slot = bindings.len();
        let mut pushed = false;
        for t in hits {
            if pushed {
                bindings[slot].tuple = t.clone();
            } else {
                bindings.push(Binding {
                    var: var.clone(),
                    tuple: t.clone(),
                    schema: schema.clone(),
                });
                pushed = true;
            }
            let r = self.eval_formula(body, bindings);
            match r {
                Err(e) => {
                    bindings.truncate(slot);
                    return Err(e);
                }
                Ok(b) if b == existential => {
                    bindings.truncate(slot);
                    return Ok(existential);
                }
                Ok(_) => {}
            }
        }
        bindings.truncate(slot);
        Ok(!existential)
    }

    /// Try to decide a quantifier over a **correlated** range through a
    /// decorrelated index probe. `Ok(None)` means "not decorrelatable —
    /// fall back to range evaluation + scan".
    ///
    /// A correlated quantified range — `SOME x IN {EACH y IN R:
    /// y.a = r.b AND local(y)} (body)`, the equivalent selector
    /// application `R[s(r.b)]`, or a correlated *join view*
    /// `{<a.w> OF EACH a IN R, s IN S: a.w = s.w AND a.t = r.t AND
    /// s.l = r.l}` — is re-evaluated from scratch for every outer
    /// combination by the reference path: O(outer × |R×S|). This path
    /// splits the branch predicate with
    /// [`joinplan::decorrelate_branch`], materialises the decorrelated
    /// part (the inner join of the binding ranges filtered by the local
    /// residual, executed through the ordinary [`joinplan::plan_branch`]
    /// index-nested-loop machinery) **once** per evaluator and catalog
    /// version, buckets it on the **joint key** of correlation columns,
    /// and decides each outer combination by probing:
    /// O(|R ⋈ S| + outer × matches), magic-set style. Catalogs that
    /// keep solver state ([`Catalog::decorr_entry`]) share the built
    /// entry across evaluators within one data epoch.
    ///
    /// Because the split is exact (`pred ≡ residual ∧ atoms`), the
    /// probed bucket *is* the correlated range's value for that outer
    /// combination, so the quantifier is decided by evaluating the full
    /// body over the bucket — no covering check, no predicate re-check.
    /// Every safety hole falls back to the reference scan, which
    /// reproduces reference error semantics: unresolvable or
    /// type-mismatched keys, selector arity/domain violations, and any
    /// error raised while building the decorrelated part (the reference
    /// path's short-circuits might never reach that error, so the
    /// rewrite is abandoned rather than risk raising it spuriously).
    fn quant_decorrelate(
        &mut self,
        var: &Var,
        range: &RangeExpr,
        body: &Formula,
        bindings: &mut Vec<Binding>,
        existential: bool,
    ) -> Result<Option<bool>, EvalError> {
        if self.nested_loop_only {
            return Ok(None);
        }
        // Binding-free ranges are served by the evaluator-lifetime range
        // cache plus `quant_probe`; only correlated ranges benefit here.
        if matches!(range, RangeExpr::Rel(_)) || is_binding_free(range) {
            return Ok(None);
        }
        self.validate_caches();
        // One hash of the range syntax per combination on the hit path.
        let cached = match self.decorr_cache.get(range) {
            Some(entry) => entry.clone(),
            None => {
                // Solver-scoped cache next: a catalog holding fixpoint
                // state serves entries built by earlier evaluators of
                // the same epoch, so branch re-evaluations and
                // semi-naive rounds reuse the join + index instead of
                // rebuilding per evaluator.
                let entry = match self.catalog.decorr_entry(range) {
                    Some(DecorrCached::Built(e)) => Some(e),
                    Some(DecorrCached::Refused) => {
                        // The building evaluator recorded *why* it
                        // refused; an evaluator served the cached
                        // refusal would otherwise scan silently. Noted
                        // once per evaluator (this arm only runs on the
                        // local-cache miss).
                        self.plan_event(PlanEvent::DecorrRefusal {
                            reason: DecorrRefusalReason::CachedRefusal,
                            range: range.to_string(),
                        });
                        None
                    }
                    None => {
                        let built = self.build_decorr_entry(range)?;
                        self.catalog.cache_decorr_entry(
                            range,
                            match &built {
                                Some(e) => DecorrCached::Built(e.clone()),
                                None => DecorrCached::Refused,
                            },
                        );
                        built
                    }
                };
                self.decorr_cache.insert(range.clone(), entry.clone());
                entry
            }
        };
        let Some(entry) = cached else {
            return Ok(None);
        };
        // Selector-application ranges: reproduce the reference path's
        // per-application arity/domain checks — on violation the scan
        // fallback raises the reference error.
        let mut arg_vals = Vec::with_capacity(entry.arg_checks.len());
        for (arg, dom) in &entry.arg_checks {
            let Ok(v) = self.eval_scalar(arg, bindings) else {
                return Ok(None);
            };
            if dom.check(&v).is_err() {
                return Ok(None);
            }
            arg_vals.push(v);
        }
        // Assemble the joint probe key from the enclosing scope (reusing
        // the values already computed for the domain checks).
        // Unresolvable or cross-type keys fall back to the scan for this
        // combination, which reproduces reference semantics exactly.
        let mut key = Vec::with_capacity(entry.keys.len());
        for ((expr, dom), arg_idx) in entry
            .keys
            .iter()
            .zip(&entry.key_domains)
            .zip(&entry.key_arg)
        {
            let v = match arg_idx {
                Some(i) => arg_vals[*i].clone(),
                None => {
                    let Ok(v) = self.eval_scalar(expr, bindings) else {
                        return Ok(None);
                    };
                    v
                }
            };
            if value_domain(&v) != *dom {
                return Ok(None);
            }
            key.push(v);
        }
        // The bucket *is* the correlated range's value for this outer
        // combination (the split is exact) — decide over it directly.
        match entry.buckets.get(key.as_slice()) {
            Some(bucket) => self
                .decide_over_bucket(
                    var,
                    &entry.element_schema,
                    body,
                    bucket.iter(),
                    bindings,
                    existential,
                )
                .map(Some),
            // Empty bucket: the correlated range is empty for this
            // combination — SOME is false, ALL vacuously true.
            None => Ok(Some(!existential)),
        }
    }

    /// Analyse and materialise the decorrelated form of a correlated
    /// quantified range — the once-per-range half of
    /// [`Evaluator::quant_decorrelate`]. Returns `Ok(None)` (with a
    /// planner trace note) when the range cannot be decorrelated
    /// safely or profitably; the decision is cached either way.
    fn build_decorr_entry(
        &mut self,
        range: &RangeExpr,
    ) -> Result<Option<Arc<DecorrEntry>>, EvalError> {
        fail::check(Site::DecorrBuild)?;
        let mut span = dc_trace::span(SpanKind::DecorrBuild);
        if span.recording() {
            span.field_with("range", || range.to_string());
        }
        let Some((branch, arg_checks)) = self.as_correlated_branch(range) else {
            self.decorr_refused(DecorrRefusalReason::UnsupportedShape, range);
            return Ok(None);
        };
        if branch.bindings.iter().any(|(_, r)| !is_binding_free(r)) {
            self.decorr_refused(DecorrRefusalReason::InnerCorrelated, range);
            return Ok(None);
        }
        let Some(split) = joinplan::decorrelate_branch(&branch) else {
            self.decorr_refused(DecorrRefusalReason::NotSplittable, range);
            return Ok(None);
        };
        // Evaluate the binding ranges (binding-free, so the reference
        // path evaluates the same expressions — its errors propagate).
        let mut scope: Vec<Binding> = Vec::new();
        let mut ranges = Vec::with_capacity(branch.bindings.len());
        for (_, r) in &branch.bindings {
            ranges.push(self.eval_range(r, &mut scope)?);
        }
        let element_schema = self.branch_schema(&branch, &ranges, &scope)?;
        // Resolve the joint-key columns. An unresolvable attribute —
        // e.g. a field referenced through a nested selector view that
        // does not carry it — demotes the atom (and with it the whole
        // rewrite, since correlation atoms cannot join the local
        // residual) back to the reference scan, with a trace note
        // instead of the former silent skip.
        let mut key_cols = Vec::with_capacity(split.atoms.len());
        let mut key_domains = Vec::with_capacity(split.atoms.len());
        let mut keys = Vec::with_capacity(split.atoms.len());
        for atom in &split.atoms {
            let schema = ranges[atom.position].schema();
            match schema.position(&atom.attr) {
                Ok(p) => {
                    key_cols.push((atom.position, p));
                    key_domains.push(schema.domain(p).base());
                    keys.push(atom.key.clone());
                }
                Err(_) => {
                    self.decorr_refused(
                        DecorrRefusalReason::AttrNotInSchema {
                            attr: atom.attr.clone(),
                        },
                        range,
                    );
                    return Ok(None);
                }
            }
        }
        // Statistics-based go/no-go: the decorrelated pass costs one
        // sweep over the inner join (amortised over all outer
        // combinations), but the probe only beats the per-combination
        // scan when the correlation columns actually narrow the bucket.
        // Catalogs that maintain a `StatsBuilder` next to their indexes
        // answer in O(arity).
        let stats: Vec<RelationStats> = branch
            .bindings
            .iter()
            .zip(&ranges)
            .map(|((_, r), rel)| self.range_stats(r, rel))
            .collect();
        let selectivity: f64 = key_cols
            .iter()
            .map(|&(b, p)| stats[b].eq_selectivity(p))
            .product();
        if ranges.iter().any(|r| !r.is_empty()) && selectivity >= 1.0 {
            self.decorr_refused(DecorrRefusalReason::NotSelective, range);
            return Ok(None);
        }
        // Synthetic inner-join branch: the original bindings, the local
        // residual as predicate, and a target prefixed with the joint-
        // key columns — compiled through the ordinary `plan_branch`
        // machinery, so cross-binding residual atoms execute as an
        // index-nested-loop join rather than a filtered cross product.
        let schemas: Vec<&Schema> = ranges.iter().map(Relation::schema).collect();
        let synth = Branch {
            target: Target::Tuple(
                split
                    .atoms
                    .iter()
                    .map(|a| {
                        ScalarExpr::Attr(branch.bindings[a.position].0.clone(), a.attr.clone())
                    })
                    .chain(element_exprs(&branch, &schemas))
                    .collect(),
            ),
            bindings: branch.bindings.clone(),
            predicate: split.residual.clone(),
        };
        // Multi-binding profitability: materialising the join is only
        // worth one pass when the residual's equality atoms keep it
        // near-linear in its inputs. A blown-up estimate (e.g. a joint
        // key over an unconstrained cross product) stays on the
        // per-combination scan, which at least never *builds* the
        // product.
        if branch.bindings.len() > 1 {
            let est = joinplan::estimate_branch_rows(&synth, &schemas, &stats);
            let total: usize = ranges.iter().map(Relation::len).sum();
            if est > (DECORR_JOIN_BLOWUP * (total + 1)) as f64 {
                self.decorr_refused(
                    DecorrRefusalReason::JoinTooLarge {
                        estimated_rows: est,
                    },
                    range,
                );
                return Ok(None);
            }
        }
        // Combined schema: reserved joint-key columns (not expressible
        // in source syntax, so they cannot clash) followed by the
        // element tuple's own attributes.
        let mut combined_attrs: Vec<Attribute> = key_cols
            .iter()
            .enumerate()
            .map(|(i, &(b, p))| {
                Attribute::new(
                    format!("{KEY_MARKER}{i}"),
                    ranges[b].schema().domain(p).clone(),
                )
            })
            .collect();
        combined_attrs.extend(element_schema.attributes().iter().cloned());
        let mut combined = Relation::new(Schema::new(combined_attrs));
        // Materialise the decorrelated join, one pass. The reference
        // path's short-circuits might never evaluate the residual (or
        // target) on some combinations, so an error here must not
        // surface — abandon the rewrite and let the scan decide.
        let mut inner: Vec<Binding> = Vec::new();
        if let Err(e) = self.eval_branch(&synth, &ranges, &mut inner, &mut combined) {
            // Governed aborts and injected faults are not evaluation
            // outcomes the scan could reproduce — they must propagate,
            // not demote the rewrite.
            if matches!(e, EvalError::Solve(_) | EvalError::FaultInjected { .. }) {
                return Err(e);
            }
            self.decorr_refused(DecorrRefusalReason::ResidualError, range);
            return Ok(None);
        }
        // Bucket the join on the joint key: key values → element set.
        let k = keys.len();
        let mut buckets: FxHashMap<Vec<Value>, Relation> = FxHashMap::default();
        for t in combined.iter() {
            // The bucket pass re-materialises every joined tuple, and —
            // unlike the probe-side output — used to run unmetered:
            // a decorrelated build dispatched on a worker thread could
            // blow straight through a tuple ceiling. Tick and count the
            // build tuples against the same shared meter.
            if let Some(m) = &self.budget {
                m.tick().map_err(SolveError::from_trip)?;
                m.add_tuples(1).map_err(SolveError::from_trip)?;
            }
            let fields = t.fields();
            let elem = Tuple::new(fields[k..].to_vec());
            if buckets
                .entry(fields[..k].to_vec())
                .or_insert_with(|| Relation::new(element_schema.clone()))
                .insert_unchecked(elem)
                .is_err()
            {
                self.decorr_refused(DecorrRefusalReason::BucketConstraint, range);
                return Ok(None);
            }
        }
        let key_arg = keys
            .iter()
            .map(|key| arg_checks.iter().position(|(a, _)| a == key))
            .collect();
        if let Some(m) = &self.metrics {
            m.inc(Counter::DecorrBuilds);
        }
        span.field("buckets", buckets.len());
        Ok(Some(Arc::new(DecorrEntry {
            element_schema,
            buckets,
            key_domains,
            keys,
            arg_checks,
            key_arg,
        })))
    }

    /// View a range expression as a correlated set-former branch, the
    /// shape decorrelation understands: a single-branch set-former with
    /// one or more bindings, or a selector application `base[s(args)]`
    /// rewritten to the single-binding filter shape by substituting the
    /// actual arguments for the formal parameters in the selector
    /// predicate (the arity check and capture guard keep the rewrite
    /// faithful; per-combination domain checks are returned for the
    /// evaluator to replay).
    fn as_correlated_branch(
        &self,
        range: &RangeExpr,
    ) -> Option<(Branch, Vec<(ScalarExpr, Domain)>)> {
        match range {
            RangeExpr::SetFormer(sf) if sf.branches.len() == 1 => {
                let b = &sf.branches[0];
                if b.bindings.is_empty() {
                    return None;
                }
                Some((b.clone(), Vec::new()))
            }
            RangeExpr::Selected {
                base,
                selector,
                args,
            } => {
                let def = self.catalog.selector(selector).ok()?;
                if def.params.len() != args.len() {
                    // Arity mismatch: the scan raises the reference error.
                    return None;
                }
                // Capture guard: an argument mentioning the element
                // variable or any variable bound inside the predicate
                // would be captured by the substitution.
                let mut bound = FxHashSet::default();
                bound.insert(def.element_var.clone());
                rewrite::bound_vars_formula(&def.predicate, &mut bound);
                if args.iter().any(|a| scalar_mentions_any(a, &bound)) {
                    return None;
                }
                let mut map = FxHashMap::default();
                let mut arg_checks = Vec::with_capacity(args.len());
                for ((pname, pdom), arg) in def.params.iter().zip(args) {
                    map.insert(pname.clone(), arg.clone());
                    arg_checks.push((arg.clone(), pdom.clone()));
                }
                let pred = rewrite::substitute_param_exprs_formula(&def.predicate, &map);
                Some((
                    Branch::each(def.element_var.clone(), (**base).clone(), pred),
                    arg_checks,
                ))
            }
            _ => None,
        }
    }

    /// Run the compiled steps depth-first. Each step reuses one binding
    /// slot across its whole iteration (one `Var`/`Schema` clone per
    /// step instead of per combination); probes touch only bucket
    /// matches.
    fn exec_plan(
        &mut self,
        branch: &Branch,
        steps: &[CompiledStep],
        ranges: &[Relation],
        depth: usize,
        bindings: &mut Vec<Binding>,
        out: &mut Relation,
    ) -> Result<(), EvalError> {
        if depth == steps.len() {
            return self.emit_if_selected(branch, bindings, out);
        }
        let step = &steps[depth];
        let (var, _) = &branch.bindings[step.position];
        let rel = &ranges[step.position];
        let slot = bindings.len();
        match &step.access {
            CompiledAccess::Scan => {
                let mut pushed = false;
                for t in rel.iter() {
                    if pushed {
                        bindings[slot].tuple = t.clone();
                    } else {
                        bindings.push(Binding {
                            var: var.clone(),
                            tuple: t.clone(),
                            schema: rel.schema().clone(),
                        });
                        pushed = true;
                    }
                    let r = self.exec_plan(branch, steps, ranges, depth + 1, bindings, out);
                    if r.is_err() {
                        bindings.truncate(slot);
                        return r;
                    }
                }
                bindings.truncate(slot);
            }
            CompiledAccess::Probe { index, keys } => {
                // Reuse one key buffer per plan depth across all of
                // this step's invocations — no allocation per probe
                // (value clones are `Arc` bumps / plain copies).
                if self.probe_scratch.len() <= depth {
                    self.probe_scratch.resize_with(depth + 1, Vec::new);
                }
                let mut key_vals = std::mem::take(&mut self.probe_scratch[depth]);
                key_vals.clear();
                for k in keys {
                    key_vals.push(match k {
                        CompiledKey::Fixed(v) => v.clone(),
                        CompiledKey::FromBinding { slot, attr_pos } => {
                            bindings[*slot].tuple.get(*attr_pos).clone()
                        }
                    });
                }
                let hits = index.probe_slice(&key_vals);
                self.probe_scratch[depth] = key_vals;
                let mut pushed = false;
                for t in hits {
                    if pushed {
                        bindings[slot].tuple = t.clone();
                    } else {
                        bindings.push(Binding {
                            var: var.clone(),
                            tuple: t.clone(),
                            schema: rel.schema().clone(),
                        });
                        pushed = true;
                    }
                    let r = self.exec_plan(branch, steps, ranges, depth + 1, bindings, out);
                    if r.is_err() {
                        bindings.truncate(slot);
                        return r;
                    }
                }
                bindings.truncate(slot);
            }
        }
        Ok(())
    }

    /// Leaf of both executors: check the (full) predicate, then emit the
    /// target tuple.
    fn emit_if_selected(
        &mut self,
        branch: &Branch,
        bindings: &mut Vec<Binding>,
        out: &mut Relation,
    ) -> Result<(), EvalError> {
        // The budget tick point of both sequential executors: one
        // relaxed increment per combination, the wall clock only every
        // `DEADLINE_STRIDE`th call.
        if let Some(m) = &self.budget {
            m.tick().map_err(SolveError::from_trip)?;
        }
        if self.eval_formula(&branch.predicate, bindings)? {
            let tuple = match &branch.target {
                Target::Var(v) => lookup(bindings, v)?.tuple.clone(),
                Target::Tuple(exprs) => {
                    let mut fields = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        fields.push(self.eval_scalar(e, bindings)?);
                    }
                    Tuple::new(fields)
                }
            };
            out.insert(tuple)?;
            if let Some(m) = &self.budget {
                m.add_tuples(1).map_err(SolveError::from_trip)?;
            }
        }
        Ok(())
    }

    fn loop_branch(
        &mut self,
        branch: &Branch,
        ranges: &[Relation],
        depth: usize,
        bindings: &mut Vec<Binding>,
        out: &mut Relation,
    ) -> Result<(), EvalError> {
        if depth == branch.bindings.len() {
            return self.emit_if_selected(branch, bindings, out);
        }
        let (var, _) = &branch.bindings[depth];
        let rel = &ranges[depth];
        let schema = rel.schema().clone();
        for t in rel.iter() {
            bindings.push(Binding {
                var: var.clone(),
                tuple: t.clone(),
                schema: schema.clone(),
            });
            let r = self.loop_branch(branch, ranges, depth + 1, bindings, out);
            bindings.pop();
            r?;
        }
        Ok(())
    }

    /// Synthesise the output schema of a branch.
    fn branch_schema(
        &mut self,
        branch: &Branch,
        ranges: &[Relation],
        bindings: &Vec<Binding>,
    ) -> Result<Schema, EvalError> {
        match &branch.target {
            Target::Var(v) => {
                let idx = branch
                    .bindings
                    .iter()
                    .position(|(bv, _)| bv == v)
                    .ok_or_else(|| EvalError::UnboundVariable(v.clone()))?;
                Ok(ranges[idx].schema().clone())
            }
            Target::Tuple(exprs) => {
                let mut attrs: Vec<Attribute> = Vec::with_capacity(exprs.len());
                let mut used: FxHashSet<String> = FxHashSet::default();
                for (i, e) in exprs.iter().enumerate() {
                    let (name, domain) = self.target_field(e, branch, ranges, bindings, i)?;
                    let mut name = name;
                    while !used.insert(name.clone()) {
                        name.push('_');
                    }
                    attrs.push(Attribute::new(name, domain));
                }
                Ok(Schema::new(attrs))
            }
        }
    }

    fn target_field(
        &mut self,
        e: &ScalarExpr,
        branch: &Branch,
        ranges: &[Relation],
        bindings: &Vec<Binding>,
        i: usize,
    ) -> Result<(String, Domain), EvalError> {
        match e {
            ScalarExpr::Attr(v, attr) => {
                // Prefer the branch's own bindings; fall back to outer
                // bindings (correlated targets).
                if let Some(idx) = branch.bindings.iter().position(|(bv, _)| bv == v) {
                    let schema = ranges[idx].schema();
                    let pos = schema.position(attr)?;
                    Ok((attr.clone(), schema.domain(pos).base()))
                } else {
                    let b = lookup(bindings, v)?;
                    let pos = b.schema.position(attr)?;
                    Ok((attr.clone(), b.schema.domain(pos).base()))
                }
            }
            ScalarExpr::Const(v) => Ok((format!("f{i}"), value_domain(v))),
            ScalarExpr::Param(p) => {
                let v = self.resolve_param(p)?;
                Ok((p.clone(), value_domain(&v)))
            }
            ScalarExpr::Arith(l, _, _) => {
                let (_, d) = self.target_field(l, branch, ranges, bindings, i)?;
                Ok((format!("f{i}"), d))
            }
        }
    }

    /// Evaluate a formula under the given bindings.
    pub fn eval_formula(
        &mut self,
        f: &Formula,
        bindings: &mut Vec<Binding>,
    ) -> Result<bool, EvalError> {
        match f {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Cmp(l, op, r) => {
                let lv = self.eval_scalar(l, bindings)?;
                let rv = self.eval_scalar(r, bindings)?;
                let ord = lv
                    .try_cmp(&rv)
                    .ok_or_else(|| EvalError::CrossTypeComparison {
                        lhs: lv.to_string(),
                        rhs: rv.to_string(),
                    })?;
                Ok(op.eval(ord))
            }
            Formula::And(a, b) => {
                Ok(self.eval_formula(a, bindings)? && self.eval_formula(b, bindings)?)
            }
            Formula::Or(a, b) => {
                Ok(self.eval_formula(a, bindings)? || self.eval_formula(b, bindings)?)
            }
            Formula::Not(inner) => Ok(!self.eval_formula(inner, bindings)?),
            Formula::Some(v, range, body) => {
                // Correlated ranges: probe the decorrelated form instead
                // of re-evaluating the range per outer combination.
                if let Some(decided) = self.quant_decorrelate(v, range, body, bindings, true)? {
                    return Ok(decided);
                }
                let rel = self.eval_range(range, bindings)?;
                if let Some(decided) = self.quant_probe(v, range, &rel, body, bindings, true)? {
                    return Ok(decided);
                }
                let schema = rel.schema().clone();
                for t in rel.iter() {
                    bindings.push(Binding {
                        var: v.clone(),
                        tuple: t.clone(),
                        schema: schema.clone(),
                    });
                    let r = self.eval_formula(body, bindings);
                    bindings.pop();
                    if r? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::All(v, range, body) => {
                if let Some(decided) = self.quant_decorrelate(v, range, body, bindings, false)? {
                    return Ok(decided);
                }
                let rel = self.eval_range(range, bindings)?;
                if let Some(decided) = self.quant_probe(v, range, &rel, body, bindings, false)? {
                    return Ok(decided);
                }
                let schema = rel.schema().clone();
                for t in rel.iter() {
                    bindings.push(Binding {
                        var: v.clone(),
                        tuple: t.clone(),
                        schema: schema.clone(),
                    });
                    let r = self.eval_formula(body, bindings);
                    bindings.pop();
                    if !r? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Member(v, range) => {
                let tuple = lookup(bindings, v)?.tuple.clone();
                let rel = self.eval_range(range, bindings)?;
                Ok(rel.contains(&tuple))
            }
            Formula::TupleIn(exprs, range) => {
                let mut fields = Vec::with_capacity(exprs.len());
                for e in exprs {
                    fields.push(self.eval_scalar(e, bindings)?);
                }
                let tuple = Tuple::new(fields);
                let rel = self.eval_range(range, bindings)?;
                Ok(rel.contains(&tuple))
            }
        }
    }

    /// Evaluate a scalar expression under the given bindings.
    pub fn eval_scalar(
        &mut self,
        e: &ScalarExpr,
        bindings: &Vec<Binding>,
    ) -> Result<Value, EvalError> {
        match e {
            ScalarExpr::Const(v) => Ok(v.clone()),
            ScalarExpr::Attr(var, attr) => {
                let b = lookup(bindings, var)?;
                let pos = b.schema.position(attr)?;
                Ok(b.tuple.get(pos).clone())
            }
            ScalarExpr::Param(p) => self.resolve_param(p),
            ScalarExpr::Arith(l, op, r) => {
                let lv = self.eval_scalar(l, bindings)?;
                let rv = self.eval_scalar(r, bindings)?;
                use crate::ast::ArithOp::*;
                Ok(match op {
                    Add => lv.add(&rv)?,
                    Sub => lv.sub(&rv)?,
                    Mul => lv.mul(&rv)?,
                    Div => lv.div(&rv)?,
                    Mod => lv.rem(&rv)?,
                })
            }
        }
    }

    fn resolve_param(&self, name: &str) -> Result<Value, EvalError> {
        for frame in self.param_frames.iter().rev() {
            if let Some(v) = frame.get(name) {
                return Ok(v.clone());
            }
        }
        self.catalog.scalar_param(name)
    }
}

/// The decorrelated form of a correlated quantified range: the
/// outer-independent part (for multi-binding ranges, the materialised
/// inner *join* of the binding ranges filtered by the local residual),
/// bucketed on the **joint key** of correlation columns. Built once per
/// (range syntax, catalog version) by the evaluator's
/// `build_decorr_entry`; each outer combination evaluates
/// the correlation keys and probes. Opaque outside the evaluator —
/// catalogs holding solver state pass it around through
/// [`crate::env::DecorrCached`] without inspecting it.
pub struct DecorrEntry {
    /// Schema of the range's element tuples (the value the quantified
    /// variable is bound to).
    element_schema: Schema,
    /// Joint-key values → the correlated range's element set for outer
    /// combinations producing that key. An absent key means the range
    /// is empty for that combination.
    buckets: FxHashMap<Vec<Value>, Relation>,
    /// Base domain of each joint-key column, parallel to `keys` —
    /// cross-type probe keys fall back to the scan per combination.
    key_domains: Vec<Domain>,
    /// Enclosing-scope key expressions, parallel to `key_domains`.
    keys: Vec<ScalarExpr>,
    /// For selector-application ranges: the actual arguments and their
    /// declared parameter domains, re-checked per combination so the
    /// reference path's arity/domain errors are preserved.
    arg_checks: Vec<(ScalarExpr, Domain)>,
    /// Per key: the index into `arg_checks` whose expression is
    /// identical to the key, so the probe loop reuses the value already
    /// computed for the domain check instead of evaluating it twice.
    key_arg: Vec<Option<usize>>,
}

impl DecorrEntry {
    /// Number of distinct joint-key values in the materialised form
    /// (observability for tests and tracing).
    pub fn distinct_keys(&self) -> usize {
        self.buckets.len()
    }
}

/// The target of a branch as scalar expressions, parallel to the
/// element schema synthesised by `Evaluator::branch_schema`: a `Var`
/// target expands to one attribute expression per column of its range.
// The expect holds by construction: callers only reach this through
// `decorrelate_branch`, which rejects branches whose target variable
// is not one of the bindings.
#[allow(clippy::expect_used)]
fn element_exprs(branch: &Branch, schemas: &[&Schema]) -> Vec<ScalarExpr> {
    match &branch.target {
        Target::Var(v) => {
            let idx = branch
                .bindings
                .iter()
                .position(|(bv, _)| bv == v)
                .expect("decorrelate_branch verified the target binding");
            schemas[idx]
                .attributes()
                .iter()
                .map(|a| ScalarExpr::Attr(v.clone(), a.name.clone()))
                .collect()
        }
        Target::Tuple(exprs) => exprs.clone(),
    }
}

/// An executable plan step: which binding position to enumerate, how.
struct CompiledStep {
    position: usize,
    access: CompiledAccess,
}

enum CompiledAccess {
    /// Iterate the whole range.
    Scan,
    /// Probe `index` with a key assembled from `keys`.
    Probe {
        index: Arc<HashIndex>,
        keys: Vec<CompiledKey>,
    },
}

/// One component of a probe key.
enum CompiledKey {
    /// Resolved before the loops started (constant, parameter, outer
    /// variable attribute).
    Fixed(Value),
    /// Read from the binding at stack slot `slot`, field `attr_pos`.
    FromBinding { slot: usize, attr_pos: usize },
}

/// Map a worker-side error into the evaluator's error type. The
/// variants correspond one to one: the pure IR can only raise the
/// errors a pure predicate/target raises on the sequential path, plus
/// the governance outcomes (budget trips, injected faults, and — if
/// the degradation retry declined to handle it — a worker panic).
fn exec_to_eval_error(e: dc_exec::ExecError) -> EvalError {
    match e {
        dc_exec::ExecError::CrossType { lhs, rhs } => EvalError::CrossTypeComparison { lhs, rhs },
        dc_exec::ExecError::Value(v) => EvalError::Value(v),
        dc_exec::ExecError::Relation(r) => EvalError::Relation(r),
        dc_exec::ExecError::WorkerPanic { message } => EvalError::Solve(SolveError::WorkerPanic {
            message,
            diag: dc_governor::SolveDiag::default(),
        }),
        dc_exec::ExecError::Budget(trip) => EvalError::Solve(SolveError::from_trip(trip)),
        dc_exec::ExecError::FaultInjected(f) => EvalError::from(f),
    }
}

/// Fingerprint of a demotion site (the quantified range's syntax),
/// used to dedup planner trace notes per site without formatting the
/// range. Only computed on demotion (fallback) paths.
fn site_fingerprint(range: &RangeExpr) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = dc_value::FxHasher::default();
    range.hash(&mut h);
    h.finish()
}

/// Fingerprint of a planned branch site, used to record its access
/// path once even when the branch re-plans per outer combination.
fn branch_fingerprint(branch: &Branch) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = dc_value::FxHasher::default();
    branch.hash(&mut h);
    h.finish()
}

/// Find the innermost binding of `var`.
fn lookup<'b>(bindings: &'b [Binding], var: &str) -> Result<&'b Binding, EvalError> {
    bindings
        .iter()
        .rev()
        .find(|b| b.var == var)
        .ok_or_else(|| EvalError::UnboundVariable(var.to_string()))
}

/// Is the range expression free of references to outer tuple variables
/// and parameters (and therefore safe to cache by syntax)?
pub fn is_binding_free(range: &RangeExpr) -> bool {
    joinplan::range_uses_only(range, &mut Vec::new())
}

/// Does the expression mention any of the given variable names?
/// (Capture check for the selector-application rewrite.)
fn scalar_mentions_any(e: &ScalarExpr, names: &FxHashSet<String>) -> bool {
    match e {
        ScalarExpr::Const(_) | ScalarExpr::Param(_) => false,
        ScalarExpr::Attr(v, _) => names.contains(v),
        ScalarExpr::Arith(l, _, r) => {
            scalar_mentions_any(l, names) || scalar_mentions_any(r, names)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, SelectorDef};
    use crate::builder::*;
    use crate::env::MapCatalog;
    use dc_value::tuple;

    fn infront(ts: &[(&str, &str)]) -> Relation {
        Relation::from_tuples(
            Schema::of(&[("front", Domain::Str), ("back", Domain::Str)]),
            ts.iter().map(|(a, b)| tuple![*a, *b]),
        )
        .unwrap()
    }

    fn catalog() -> MapCatalog {
        MapCatalog::new().with_relation(
            "Infront",
            infront(&[("vase", "table"), ("table", "chair"), ("chair", "wall")]),
        )
    }

    /// The paper's ahead-2 body (§2.3):
    /// `{ EACH r IN Infront: TRUE,
    ///    <f.front, b.back> OF EACH f, b IN Infront: f.back = b.front }`
    fn ahead2_expr() -> RangeExpr {
        set_former(vec![
            Branch::each("r", rel("Infront"), tru()),
            Branch::projecting(
                vec![attr("f", "front"), attr("b", "back")],
                vec![("f".into(), rel("Infront")), ("b".into(), rel("Infront"))],
                eq(attr("f", "back"), attr("b", "front")),
            ),
        ])
    }

    #[test]
    fn ahead2_from_the_paper() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let out = ev.eval(&ahead2_expr()).unwrap();
        // Base pairs plus two-step pairs.
        assert_eq!(out.len(), 5);
        assert!(out.contains(&tuple!["vase", "chair"]));
        assert!(out.contains(&tuple!["table", "wall"]));
        assert!(!out.contains(&tuple!["vase", "wall"])); // three steps
    }

    #[test]
    fn branch_schema_names_from_attrs() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let out = ev.eval(&ahead2_expr()).unwrap();
        let names: Vec<&str> = out
            .schema()
            .attributes()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(names, vec!["front", "back"]);
    }

    #[test]
    fn selector_hidden_by() {
        // SELECTOR hidden_by(Obj) FOR Rel; EACH r IN Rel: r.front = Obj
        let def = SelectorDef {
            name: "hidden_by".into(),
            element_var: "r".into(),
            params: vec![("Obj".into(), Domain::Str)],
            predicate: eq(attr("r", "front"), param("Obj")),
        };
        let cat = catalog().with_selector(def);
        let mut ev = Evaluator::new(&cat);
        let e = rel("Infront").select("hidden_by", vec![cnst("table")]);
        let out = ev.eval(&e).unwrap();
        assert_eq!(out.sorted_tuples(), vec![tuple!["table", "chair"]]);
    }

    #[test]
    fn selector_arity_mismatch() {
        let def = SelectorDef {
            name: "s".into(),
            element_var: "r".into(),
            params: vec![("Obj".into(), Domain::Str)],
            predicate: tru(),
        };
        let cat = catalog().with_selector(def);
        let mut ev = Evaluator::new(&cat);
        let e = rel("Infront").select("s", vec![]);
        assert!(matches!(ev.eval(&e), Err(EvalError::ArityMismatch { .. })));
    }

    #[test]
    fn selector_param_domain_checked() {
        let def = SelectorDef {
            name: "s".into(),
            element_var: "r".into(),
            params: vec![("Obj".into(), Domain::Int)],
            predicate: tru(),
        };
        let cat = catalog().with_selector(def);
        let mut ev = Evaluator::new(&cat);
        let e = rel("Infront").select("s", vec![cnst("table")]);
        assert!(matches!(ev.eval(&e), Err(EvalError::Type(_))));
    }

    #[test]
    fn referential_integrity_selector() {
        // §2.3: EACH r IN Rel: SOME o1 IN Objects (r.front = o1.part)
        let objects = Relation::from_tuples(
            Schema::of(&[("part", Domain::Str)]),
            vec![tuple!["vase"], tuple!["table"], tuple!["chair"]],
        )
        .unwrap();
        let def = SelectorDef {
            name: "refint".into(),
            element_var: "r".into(),
            params: vec![],
            predicate: some(
                "o1",
                rel("Objects"),
                eq(attr("r", "front"), attr("o1", "part")),
            )
            .and(some(
                "o2",
                rel("Objects"),
                eq(attr("r", "back"), attr("o2", "part")),
            )),
        };
        let cat = catalog()
            .with_relation("Objects", objects)
            .with_selector(def);
        let mut ev = Evaluator::new(&cat);
        let out = ev.eval(&rel("Infront").select("refint", vec![])).unwrap();
        // ("chair","wall") fails: "wall" is not an object.
        assert_eq!(out.len(), 2);
        assert!(!out.contains(&tuple!["chair", "wall"]));
    }

    #[test]
    fn quantifiers_some_all() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        // EACH r IN Infront: ALL x IN Infront (x.front # r.back)
        // keeps tuples whose back never appears as a front — sinks.
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            all(
                "x",
                rel("Infront"),
                ne(attr("x", "front"), attr("r", "back")),
            ),
        )]);
        let out = ev.eval(&e).unwrap();
        assert_eq!(out.sorted_tuples(), vec![tuple!["chair", "wall"]]);
        // SOME dual: tuples whose back does appear as a front.
        let e2 = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some(
                "x",
                rel("Infront"),
                eq(attr("x", "front"), attr("r", "back")),
            ),
        )]);
        let out2 = ev.eval(&e2).unwrap();
        assert_eq!(out2.len(), 2);
    }

    #[test]
    fn membership_predicates() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        // EACH r IN Infront: NOT (<r.back, r.front> IN Infront)
        // (keeps tuples with no reverse pair — all of them here).
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            Formula::TupleIn(vec![attr("r", "back"), attr("r", "front")], rel("Infront")).negate(),
        )]);
        let out = ev.eval(&e).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn member_var_in_range() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        // EACH r IN Infront: r IN Infront — trivially all.
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            Formula::Member("r".into(), rel("Infront")),
        )]);
        assert_eq!(ev.eval(&e).unwrap().len(), 3);
    }

    #[test]
    fn arithmetic_in_targets() {
        let nums = Relation::from_tuples(
            Schema::of(&[("n", Domain::Int)]),
            vec![tuple![1i64], tuple![2i64]],
        )
        .unwrap();
        let cat = MapCatalog::new().with_relation("N", nums);
        let mut ev = Evaluator::new(&cat);
        // <r.n + 10> OF EACH r IN N: TRUE
        let e = set_former(vec![Branch::projecting(
            vec![add(attr("r", "n"), cnst(10i64))],
            vec![("r".into(), rel("N"))],
            tru(),
        )]);
        let out = ev.eval(&e).unwrap();
        assert!(out.contains(&tuple![11i64]));
        assert!(out.contains(&tuple![12i64]));
    }

    #[test]
    fn cross_type_comparison_is_error() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            eq(attr("r", "front"), cnst(1i64)),
        )]);
        assert!(matches!(
            ev.eval(&e),
            Err(EvalError::CrossTypeComparison { .. })
        ));
    }

    #[test]
    fn unbound_variable_error() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            eq(attr("zz", "front"), cnst("x")),
        )]);
        assert!(matches!(ev.eval(&e), Err(EvalError::UnboundVariable(_))));
    }

    #[test]
    fn union_of_incompatible_branches_rejected() {
        let nums =
            Relation::from_tuples(Schema::of(&[("n", Domain::Int)]), vec![tuple![1i64]]).unwrap();
        let cat = catalog().with_relation("N", nums);
        let mut ev = Evaluator::new(&cat);
        let e = set_former(vec![
            Branch::each("r", rel("Infront"), tru()),
            Branch::each("x", rel("N"), tru()),
        ]);
        assert!(ev.eval(&e).is_err());
    }

    #[test]
    fn correlated_subquery_not_cached() {
        // The inner set former references the outer variable `r`; its
        // value must be recomputed per outer tuple.
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        // EACH r IN Infront:
        //   SOME x IN {EACH y IN Infront: y.front = r.back} (TRUE)
        let inner = set_former(vec![Branch::each(
            "y",
            rel("Infront"),
            eq(attr("y", "front"), attr("r", "back")),
        )]);
        assert!(!is_binding_free(&inner));
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some("x", inner, tru()),
        )]);
        let out = ev.eval(&e).unwrap();
        // Same result as the SOME formulation above.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn binding_free_detection() {
        assert!(is_binding_free(&rel("R")));
        assert!(is_binding_free(&rel("R").select("s", vec![cnst(1i64)])));
        assert!(!is_binding_free(
            &rel("R").select("s", vec![attr("r", "a")])
        ));
        assert!(!is_binding_free(&rel("R").select("s", vec![param("P")])));
        // A closed set former is binding-free even though it binds its
        // own variables.
        let closed = set_former(vec![Branch::each("x", rel("R"), tru())]);
        assert!(is_binding_free(&closed));
    }

    #[test]
    fn constructed_range_delegates_to_catalog() {
        let cat = catalog().with_constructor_fn("identity", Box::new(|base, _| Ok(base)));
        let mut ev = Evaluator::new(&cat);
        let out = ev
            .eval(&rel("Infront").construct("identity", vec![]))
            .unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn duplicate_target_names_disambiguated() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        // <f.front, b.front> OF … — two `front` columns.
        let e = set_former(vec![Branch::projecting(
            vec![attr("f", "front"), attr("b", "front")],
            vec![("f".into(), rel("Infront")), ("b".into(), rel("Infront"))],
            eq(attr("f", "back"), attr("b", "front")),
        )]);
        let out = ev.eval(&e).unwrap();
        let names: Vec<&str> = out
            .schema()
            .attributes()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(names, vec!["front", "front_"]);
    }

    #[test]
    fn index_path_agrees_with_nested_loop_reference() {
        // The join branch of §2.3 runs through the index-nested-loop
        // executor; the reference evaluator is the semantics oracle.
        let cat = catalog();
        let planned = Evaluator::new(&cat).eval(&ahead2_expr()).unwrap();
        let reference = Evaluator::new(&cat)
            .force_nested_loop()
            .eval(&ahead2_expr())
            .unwrap();
        assert_eq!(planned, reference);
        assert_eq!(planned.len(), 5);
    }

    #[test]
    fn outer_variable_key_probes_correlated_branch() {
        // The inner set former's equality key references the outer
        // variable `r` — compiled as a Fixed key per outer binding.
        let cat = catalog();
        let inner = set_former(vec![Branch::each(
            "y",
            rel("Infront"),
            eq(attr("y", "front"), attr("r", "back")),
        )]);
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some("x", inner, tru()),
        )]);
        let planned = Evaluator::new(&cat).eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        assert_eq!(planned.len(), 2);
    }

    #[test]
    fn cross_type_key_demoted_to_residual_error() {
        // `r.front = 1` would probe a STRING column with an INTEGER key;
        // the compiler must demote the atom so the reference error
        // semantics (CrossTypeComparison) survive.
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let e = set_former(vec![Branch::projecting(
            vec![attr("f", "front")],
            vec![("f".into(), rel("Infront")), ("b".into(), rel("Infront"))],
            eq(attr("f", "back"), attr("b", "front")).and(eq(attr("f", "front"), cnst(1i64))),
        )]);
        assert!(matches!(
            ev.eval(&e),
            Err(EvalError::CrossTypeComparison { .. })
        ));
    }

    #[test]
    fn unknown_param_key_demoted_not_planned_away() {
        // An unresolvable parameter key falls back to the residual,
        // which raises the same UnknownParam the reference path does.
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let e = set_former(vec![Branch::projecting(
            vec![attr("f", "front")],
            vec![("f".into(), rel("Infront")), ("b".into(), rel("Infront"))],
            eq(attr("f", "back"), attr("b", "front")).and(eq(attr("b", "back"), param("Ghost"))),
        )]);
        assert!(matches!(ev.eval(&e), Err(EvalError::UnknownParam(_))));
    }

    #[test]
    fn three_way_join_chains_probes() {
        // EACH a, b, c IN Infront: a.back = b.front AND b.back = c.front
        // — two probe steps chained off one scan.
        let cat = catalog();
        let e = set_former(vec![Branch::projecting(
            vec![attr("a", "front"), attr("c", "back")],
            vec![
                ("a".into(), rel("Infront")),
                ("b".into(), rel("Infront")),
                ("c".into(), rel("Infront")),
            ],
            eq(attr("a", "back"), attr("b", "front"))
                .and(eq(attr("b", "back"), attr("c", "front"))),
        )]);
        let planned = Evaluator::new(&cat).eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        // The only 3-edge chain is vase→table→chair→wall ⇒ <vase, wall>.
        assert_eq!(planned.sorted_tuples(), vec![tuple!["vase", "wall"]]);
    }

    #[test]
    fn catalog_resolution_shares_storage() {
        // COW acceptance: resolving a named relation hands out a handle
        // sharing the catalog's tuple storage — no copy per branch.
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let out = ev.eval(&rel("Infront")).unwrap();
        let original = cat.relation("Infront").unwrap();
        assert!(Relation::shares_storage(&out, &original));
        // Repeated resolution through the range cache shares too.
        let again = ev.eval(&rel("Infront")).unwrap();
        assert!(Relation::shares_storage(&out, &again));
    }

    fn objects_catalog() -> MapCatalog {
        let objects = Relation::from_tuples(
            Schema::of(&[("part", Domain::Str), ("kind", Domain::Str)]),
            vec![
                tuple!["vase", "decor"],
                tuple!["table", "furniture"],
                tuple!["chair", "furniture"],
            ],
        )
        .unwrap();
        catalog().with_relation("Objects", objects)
    }

    #[test]
    fn some_probe_agrees_with_reference() {
        // EACH r IN Infront: SOME o IN Objects (o.part = r.back) —
        // the selector-style predicate the quantifier probe targets.
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some(
                "o",
                rel("Objects"),
                eq(attr("o", "part"), attr("r", "back")),
            ),
        )]);
        let cat = objects_catalog();
        let planned = Evaluator::new(&cat).eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        // ("chair","wall") drops: "wall" is not an object.
        assert_eq!(planned.len(), 2);
    }

    #[test]
    fn some_probe_with_residual_conjunct() {
        // The probe narrows to the bucket; the residual (`o.kind`)
        // still filters within it.
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some(
                "o",
                rel("Objects"),
                eq(attr("o", "part"), attr("r", "back"))
                    .and(eq(attr("o", "kind"), cnst("furniture"))),
            ),
        )]);
        let cat = objects_catalog();
        let planned = Evaluator::new(&cat).eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        assert_eq!(planned.len(), 2); // backs "table" and "chair"
    }

    #[test]
    fn all_probe_agrees_with_reference() {
        // ALL o IN Objects (o.part = r.front): only satisfiable when
        // the bucket covers the whole range — never here (3 objects).
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            all(
                "o",
                rel("Objects"),
                eq(attr("o", "part"), attr("r", "front")),
            ),
        )]);
        let cat = objects_catalog();
        let planned = Evaluator::new(&cat).eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        assert!(planned.is_empty());

        // Single-object registry: the bucket can cover the range.
        let one = Relation::from_tuples(
            Schema::of(&[("part", Domain::Str), ("kind", Domain::Str)]),
            vec![tuple!["vase", "decor"]],
        )
        .unwrap();
        let cat1 = catalog().with_relation("Objects", one);
        let planned1 = Evaluator::new(&cat1).eval(&e).unwrap();
        let reference1 = Evaluator::new(&cat1).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned1, reference1);
        assert_eq!(planned1.sorted_tuples(), vec![tuple!["vase", "table"]]);

        // Empty registry: ALL is vacuously true on both paths.
        let empty = Relation::new(Schema::of(&[("part", Domain::Str), ("kind", Domain::Str)]));
        let cat0 = catalog().with_relation("Objects", empty);
        let planned0 = Evaluator::new(&cat0).eval(&e).unwrap();
        assert_eq!(planned0.len(), 3);
    }

    #[test]
    fn quant_probe_demotes_cross_type_key() {
        // `o.part = 1` probes a STRING column with an INTEGER key: the
        // atom is demoted and the scan raises the reference error.
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some("o", rel("Objects"), eq(attr("o", "part"), cnst(1i64))),
        )]);
        let cat = objects_catalog();
        assert!(matches!(
            Evaluator::new(&cat).eval(&e),
            Err(EvalError::CrossTypeComparison { .. })
        ));
    }

    #[test]
    fn negated_some_probe_agrees() {
        // Hidden objects: EACH r IN Infront: NOT SOME o IN Objects
        // (o.part = r.back) — negation wraps the probed quantifier.
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            not(some(
                "o",
                rel("Objects"),
                eq(attr("o", "part"), attr("r", "back")),
            )),
        )]);
        let cat = objects_catalog();
        let planned = Evaluator::new(&cat).eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        assert_eq!(planned.sorted_tuples(), vec![tuple!["chair", "wall"]]);
    }

    fn scene_catalog() -> MapCatalog {
        let ontop = Relation::from_tuples(
            Schema::of(&[("top", Domain::Str), ("base", Domain::Str)]),
            vec![
                tuple!["cup", "table"],
                tuple!["book", "table"],
                tuple!["dust", "chair"],
            ],
        )
        .unwrap();
        catalog().with_relation("Ontop", ontop)
    }

    /// The correlated-selector shape of §2.3:
    /// `EACH r IN Infront: SOME t IN {EACH o IN Ontop: o.base = r.front
    ///  AND o.top # "dust"} (TRUE)` — the range depends on `r`, so the
    /// reference path re-evaluates it per combination.
    fn correlated_some() -> RangeExpr {
        let inner = set_former(vec![Branch::each(
            "o",
            rel("Ontop"),
            eq(attr("o", "base"), attr("r", "front")).and(ne(attr("o", "top"), cnst("dust"))),
        )]);
        set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some("t", inner, tru()),
        )])
    }

    #[test]
    fn decorrelated_some_agrees_with_reference() {
        let cat = scene_catalog();
        let e = correlated_some();
        let mut ev = Evaluator::new(&cat);
        let planned = ev.eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        // Only "table" carries a non-dust item ⇒ the ("table","chair")
        // edge survives... "vase" carries nothing, "chair" only dust.
        assert_eq!(planned.sorted_tuples(), vec![tuple!["table", "chair"]]);
        // The rewrite went through: no demotion/abandonment notes.
        assert!(ev.plan_notes().is_empty(), "{:?}", ev.plan_notes());
    }

    #[test]
    fn decorrelated_all_agrees_with_reference() {
        // ALL over a correlated range: every item on r.front is a cup.
        let cat = scene_catalog();
        let inner = set_former(vec![Branch::each(
            "o",
            rel("Ontop"),
            eq(attr("o", "base"), attr("r", "front")),
        )]);
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            all("t", inner, eq(attr("t", "top"), cnst("cup"))),
        )]);
        let planned = Evaluator::new(&cat).eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        // vase carries nothing (vacuously true); table carries a book
        // (not a cup) and chair carries dust — both falsified.
        assert_eq!(planned.sorted_tuples(), vec![tuple!["vase", "table"]]);
    }

    #[test]
    fn correlated_selector_application_decorrelated() {
        // Ontop[on_base(r.front)] — a selector application whose actual
        // argument references the outer variable.
        let def = SelectorDef {
            name: "on_base".into(),
            element_var: "o".into(),
            params: vec![("B".into(), Domain::Str)],
            predicate: eq(attr("o", "base"), param("B")),
        };
        let cat = scene_catalog().with_selector(def);
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some(
                "t",
                rel("Ontop").select("on_base", vec![attr("r", "front")]),
                tru(),
            ),
        )]);
        let mut ev = Evaluator::new(&cat);
        let planned = ev.eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        assert_eq!(planned.len(), 2); // table and chair carry items
        assert!(ev.plan_notes().is_empty(), "{:?}", ev.plan_notes());
    }

    #[test]
    fn all_implication_body_probed_on_named_range() {
        // ALL t IN Ontop (NOT (t.base = r.front) OR t.top = "cup"):
        // implication-shaped body; the falsifier (t.base = r.front AND
        // t.top # "cup") localises counterexamples in the base bucket.
        let cat = scene_catalog();
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            all(
                "t",
                rel("Ontop"),
                not(eq(attr("t", "base"), attr("r", "front")))
                    .or(eq(attr("t", "top"), cnst("cup"))),
            ),
        )]);
        let planned = Evaluator::new(&cat).eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        // vase: nothing on it (vacuous); table: carries a book ⇒ out;
        // chair: carries dust ⇒ out.
        assert_eq!(planned.sorted_tuples(), vec![tuple!["vase", "table"]]);
    }

    #[test]
    fn quant_probe_demotion_leaves_trace_note() {
        // The quantified range is a set-former view projecting `top`
        // away (the nested-selector shape); the body atom references
        // the missing field, so the probe must demote to the residual
        // scan — with a trace note, not silently.
        let cat = scene_catalog();
        let view = set_former(vec![Branch::projecting(
            vec![attr("o", "base")],
            vec![("o".into(), rel("Ontop"))],
            tru(),
        )]);
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some("t", view, eq(attr("t", "top"), attr("r", "front"))),
        )]);
        let mut ev = Evaluator::new(&cat);
        // The body genuinely references the missing field, so *both*
        // paths raise the same reference error — the probe demotes to
        // the scan (which raises it) instead of probing a bogus column.
        let planned = ev.eval(&e);
        assert!(
            matches!(planned, Err(EvalError::Type(_))),
            "got {planned:?}"
        );
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e);
        assert!(matches!(reference, Err(EvalError::Type(_))));
        let notes = ev.take_plan_notes();
        assert!(
            notes
                .iter()
                .any(|n| n.contains("`top`") && n.contains("not in range schema")),
            "expected a demotion note, got {notes:?}"
        );
        assert!(ev.plan_notes().is_empty(), "take drains the trace");
    }

    #[test]
    fn decorrelation_refusal_leaves_trace_note() {
        // Correlated through an inequality: not splittable — scans with
        // a note.
        let cat = scene_catalog();
        let inner = set_former(vec![Branch::each(
            "o",
            rel("Ontop"),
            lt(attr("o", "base"), attr("r", "front")),
        )]);
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some("t", inner, tru()),
        )]);
        let mut ev = Evaluator::new(&cat);
        let planned = ev.eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        assert!(
            ev.plan_notes().iter().any(|n| n.contains("not splittable")),
            "{:?}",
            ev.plan_notes()
        );
    }

    /// A catalog whose relation can change under a live evaluator, with
    /// a data version to announce it — the mid-solve commit shape.
    struct VersionedCatalog {
        rel: std::cell::RefCell<Relation>,
        version: std::cell::Cell<u64>,
    }

    impl Catalog for VersionedCatalog {
        fn relation(&self, name: &str) -> Result<Relation, EvalError> {
            if name == "R" {
                Ok(self.rel.borrow().clone())
            } else {
                Err(EvalError::UnknownRelation(name.to_string()))
            }
        }
        fn version(&self) -> u64 {
            self.version.get()
        }
    }

    #[test]
    fn version_bump_invalidates_syntax_keyed_caches() {
        let cat = VersionedCatalog {
            rel: std::cell::RefCell::new(infront(&[("a", "b")])),
            version: std::cell::Cell::new(0),
        };
        let q = rel("R");
        let mut ev = Evaluator::new(&cat);
        assert_eq!(ev.eval(&q).unwrap().len(), 1);
        // Mutate *without* a bump: the evaluator-lifetime cache serves
        // the old snapshot (documented contract: create a new evaluator
        // or bump the version).
        cat.rel.borrow_mut().insert(tuple!["b", "c"]).unwrap();
        assert_eq!(ev.eval(&q).unwrap().len(), 1);
        // Bump: the stale entry is dropped and re-read.
        cat.version.set(1);
        assert_eq!(ev.eval(&q).unwrap().len(), 2);
    }

    /// A four-relation catalog for the multi-binding (joint-key)
    /// decorrelation shape: `Assign(task, worker)`, `Skill(worker,
    /// tool)` and an outer `Requests(task, tool)`.
    fn staffing_catalog() -> MapCatalog {
        let assign = Relation::from_tuples(
            Schema::of(&[("task", Domain::Str), ("worker", Domain::Str)]),
            vec![
                tuple!["t1", "w1"],
                tuple!["t1", "w2"],
                tuple!["t2", "w2"],
                tuple!["t3", "w3"],
            ],
        )
        .unwrap();
        let skill = Relation::from_tuples(
            Schema::of(&[("worker", Domain::Str), ("tool", Domain::Str)]),
            vec![
                tuple!["w1", "hammer"],
                tuple!["w2", "saw"],
                tuple!["w3", "hammer"],
            ],
        )
        .unwrap();
        let requests = Relation::from_tuples(
            Schema::of(&[("task", Domain::Str), ("tool", Domain::Str)]),
            vec![
                tuple!["t1", "hammer"],
                tuple!["t1", "saw"],
                tuple!["t2", "hammer"],
                tuple!["t3", "hammer"],
            ],
        )
        .unwrap();
        MapCatalog::new()
            .with_relation("Assign", assign)
            .with_relation("Skill", skill)
            .with_relation("Requests", requests)
    }

    /// The joint-key join view: workers assigned to `r.task` and
    /// skilled on `r.tool`.
    fn qualified_view() -> RangeExpr {
        set_former(vec![Branch::projecting(
            vec![attr("a", "worker")],
            vec![("a".into(), rel("Assign")), ("s".into(), rel("Skill"))],
            eq(attr("a", "worker"), attr("s", "worker"))
                .and(eq(attr("a", "task"), attr("r", "task")))
                .and(eq(attr("s", "tool"), attr("r", "tool"))),
        )])
    }

    #[test]
    fn multi_binding_joint_key_decorrelation_agrees_with_reference() {
        let cat = staffing_catalog();
        let e = set_former(vec![Branch::each(
            "r",
            rel("Requests"),
            some("x", qualified_view(), tru()),
        )]);
        let mut ev = Evaluator::new(&cat);
        let planned = ev.eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        // t1+hammer (w1), t1+saw (w2), t2+saw is not requested,
        // t2+hammer has no qualified worker, t3+hammer (w3).
        assert_eq!(planned.len(), 3);
        assert!(!planned.contains(&tuple!["t2", "hammer"]));
        // The rewrite went through: no demotion/abandonment notes.
        assert!(ev.plan_notes().is_empty(), "{:?}", ev.plan_notes());
    }

    #[test]
    fn multi_binding_all_quantifier_decorrelated() {
        // ALL x IN <join view> (x.worker # "w2"): requests every
        // qualified assigned worker of which avoids w2 — vacuously true
        // where the view is empty.
        let cat = staffing_catalog();
        let e = set_former(vec![Branch::each(
            "r",
            rel("Requests"),
            all("x", qualified_view(), ne(attr("x", "worker"), cnst("w2"))),
        )]);
        let planned = Evaluator::new(&cat).eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        // Only t1+saw resolves to w2.
        assert_eq!(planned.len(), 3);
        assert!(!planned.contains(&tuple!["t1", "saw"]));
    }

    #[test]
    fn multi_binding_unconstrained_cross_product_refused() {
        // Joint key spans both bindings but the residual carries no
        // join atom: the decorrelated form would *materialise* the full
        // Assign × Skill product — the blow-up gate refuses and the
        // scan path answers. (Inputs are sized so the product clearly
        // exceeds the documented 8× bound over the summed inputs.)
        let assign = Relation::from_tuples(
            Schema::of(&[("task", Domain::Str), ("worker", Domain::Str)]),
            (0..40).map(|i| tuple![format!("t{i}"), format!("w{i}")]),
        )
        .unwrap();
        let skill = Relation::from_tuples(
            Schema::of(&[("worker", Domain::Str), ("tool", Domain::Str)]),
            (0..40).map(|i| tuple![format!("w{i}"), format!("l{i}")]),
        )
        .unwrap();
        let requests = Relation::from_tuples(
            Schema::of(&[("task", Domain::Str), ("tool", Domain::Str)]),
            vec![tuple!["t1", "l1"], tuple!["t2", "l3"]],
        )
        .unwrap();
        let cat = MapCatalog::new()
            .with_relation("Assign", assign)
            .with_relation("Skill", skill)
            .with_relation("Requests", requests);
        let view = set_former(vec![Branch::projecting(
            vec![attr("a", "worker")],
            vec![("a".into(), rel("Assign")), ("s".into(), rel("Skill"))],
            eq(attr("a", "task"), attr("r", "task")).and(eq(attr("s", "tool"), attr("r", "tool"))),
        )]);
        let e = set_former(vec![Branch::each(
            "r",
            rel("Requests"),
            some("x", view, tru()),
        )]);
        let mut ev = Evaluator::new(&cat);
        let planned = ev.eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        assert!(
            ev.plan_notes()
                .iter()
                .any(|n| n.contains("inner join too large")),
            "{:?}",
            ev.plan_notes()
        );
    }

    #[test]
    fn multi_binding_correlated_target_refused() {
        // The view's target references the outer variable — the element
        // tuples vary per outer combination, so decorrelation must
        // refuse (and the scan must agree).
        let cat = staffing_catalog();
        let view = set_former(vec![Branch::projecting(
            vec![attr("a", "worker"), attr("r", "tool")],
            vec![("a".into(), rel("Assign"))],
            eq(attr("a", "task"), attr("r", "task")),
        )]);
        let e = set_former(vec![Branch::each(
            "r",
            rel("Requests"),
            some("x", view, eq(attr("x", "tool"), cnst("saw"))),
        )]);
        let mut ev = Evaluator::new(&cat);
        let planned = ev.eval(&e).unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(planned, reference);
        // Only t1+saw: its task has assigned workers and its own tool
        // is "saw" (the correlated target column).
        assert_eq!(planned.sorted_tuples(), vec![tuple!["t1", "saw"]]);
        assert!(
            ev.plan_notes().iter().any(|n| n.contains("not splittable")),
            "{:?}",
            ev.plan_notes()
        );
    }

    #[test]
    fn multi_binding_cross_type_joint_key_falls_back_per_combination() {
        // One joint-key component is INTEGER-valued on the outer side
        // while the correlation column is STRING: the probe demotes to
        // the scan per combination, which raises the reference error.
        let nums = Relation::from_tuples(
            Schema::of(&[("task", Domain::Str), ("n", Domain::Int)]),
            vec![tuple!["t1", 1i64]],
        )
        .unwrap();
        let cat = staffing_catalog().with_relation("Nums", nums);
        let view = set_former(vec![Branch::projecting(
            vec![attr("a", "worker")],
            vec![("a".into(), rel("Assign")), ("s".into(), rel("Skill"))],
            eq(attr("a", "worker"), attr("s", "worker")).and(eq(attr("a", "task"), attr("r", "n"))),
        )]);
        let e = set_former(vec![Branch::each("r", rel("Nums"), some("x", view, tru()))]);
        let planned = Evaluator::new(&cat).eval(&e);
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e);
        assert!(
            matches!(planned, Err(EvalError::CrossTypeComparison { .. })),
            "got {planned:?}"
        );
        assert!(matches!(
            reference,
            Err(EvalError::CrossTypeComparison { .. })
        ));
    }

    /// A catalog wrapping [`MapCatalog`] with a decorrelation cache —
    /// the solver-scoped cache shape, observable for tests.
    struct CachingCatalog {
        inner: MapCatalog,
        decorr: std::cell::RefCell<FxHashMap<RangeExpr, DecorrCached>>,
        stores: std::cell::Cell<usize>,
        hits: std::cell::Cell<usize>,
    }

    impl Catalog for CachingCatalog {
        fn relation(&self, name: &str) -> Result<Relation, EvalError> {
            self.inner.relation(name)
        }
        fn decorr_entry(&self, range: &RangeExpr) -> Option<DecorrCached> {
            let hit = self.decorr.borrow().get(range).cloned();
            if hit.is_some() {
                self.hits.set(self.hits.get() + 1);
            }
            hit
        }
        fn cache_decorr_entry(&self, range: &RangeExpr, entry: DecorrCached) {
            self.stores.set(self.stores.get() + 1);
            self.decorr.borrow_mut().insert(range.clone(), entry);
        }
    }

    #[test]
    fn solver_scoped_cache_hit_returns_same_entry_without_rebuild() {
        let cat = CachingCatalog {
            inner: staffing_catalog(),
            decorr: std::cell::RefCell::new(FxHashMap::default()),
            stores: std::cell::Cell::new(0),
            hits: std::cell::Cell::new(0),
        };
        let e = set_former(vec![Branch::each(
            "r",
            rel("Requests"),
            some("x", qualified_view(), tru()),
        )]);
        let first = Evaluator::new(&cat).eval(&e).unwrap();
        assert_eq!(cat.stores.get(), 1, "one build, one store");
        let DecorrCached::Built(entry_after_first) =
            cat.decorr.borrow().values().next().unwrap().clone()
        else {
            panic!("expected a built entry");
        };
        assert!(entry_after_first.distinct_keys() > 0);
        // A second evaluator (fresh lifetime, same catalog) must serve
        // the cached entry — same Arc, no rebuild, no second store.
        let second = Evaluator::new(&cat).eval(&e).unwrap();
        assert_eq!(first, second);
        assert_eq!(cat.stores.get(), 1, "no rebuild on the cache hit");
        assert!(cat.hits.get() >= 1, "the second evaluator hit the cache");
        let DecorrCached::Built(entry_after_second) =
            cat.decorr.borrow().values().next().unwrap().clone()
        else {
            panic!("expected a built entry");
        };
        assert!(
            Arc::ptr_eq(&entry_after_first, &entry_after_second),
            "cache hit must return the same Arc"
        );
    }

    #[test]
    fn cached_refusal_hit_leaves_trace_note() {
        // First evaluator analyses and refuses (inequality correlation
        // is not splittable) and stores the refusal in the catalog;
        // a second evaluator served that cached refusal must note the
        // silent-scan decision too — the hit path used to lose it.
        let cat = CachingCatalog {
            inner: scene_catalog(),
            decorr: std::cell::RefCell::new(FxHashMap::default()),
            stores: std::cell::Cell::new(0),
            hits: std::cell::Cell::new(0),
        };
        let inner = set_former(vec![Branch::each(
            "o",
            rel("Ontop"),
            lt(attr("o", "base"), attr("r", "front")),
        )]);
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some("t", inner, tru()),
        )]);
        let mut first = Evaluator::new(&cat);
        first.eval(&e).unwrap();
        assert!(
            first
                .plan_notes()
                .iter()
                .any(|n| n.contains("not splittable")),
            "{:?}",
            first.plan_notes()
        );
        assert_eq!(cat.stores.get(), 1);
        let mut second = Evaluator::new(&cat);
        second.eval(&e).unwrap();
        assert!(cat.hits.get() >= 1, "second evaluator hit the cache");
        assert!(
            second
                .plan_notes()
                .iter()
                .any(|n| n.contains("cached refusal served from catalog")),
            "hit path must leave a trace note, got {:?}",
            second.plan_notes()
        );
    }

    #[test]
    fn parallel_branch_agrees_with_sequential() {
        // The §2.3 join branch, forced through the parallel executor
        // (threshold 1, 4 workers) — identical to both the sequential
        // index path and the reference nested loops.
        let cat = catalog();
        let parallel = Evaluator::new(&cat)
            .with_threads(4)
            .with_parallel_threshold(1)
            .eval(&ahead2_expr())
            .unwrap();
        let sequential = Evaluator::new(&cat).eval(&ahead2_expr()).unwrap();
        let reference = Evaluator::new(&cat)
            .force_nested_loop()
            .eval(&ahead2_expr())
            .unwrap();
        assert_eq!(parallel, sequential);
        assert_eq!(parallel, reference);
        assert_eq!(parallel.len(), 5);
    }

    #[test]
    fn parallel_path_preserves_reference_errors() {
        // The residual carries a cross-type comparison the probe keys
        // do not reject: both executors must raise it.
        let cat = catalog();
        let e = set_former(vec![Branch::projecting(
            vec![attr("f", "front")],
            vec![("f".into(), rel("Infront")), ("b".into(), rel("Infront"))],
            eq(attr("f", "back"), attr("b", "front")).and(eq(attr("f", "front"), cnst(1i64))),
        )]);
        let parallel = Evaluator::new(&cat)
            .with_threads(4)
            .with_parallel_threshold(1)
            .eval(&e);
        assert!(
            matches!(parallel, Err(EvalError::CrossTypeComparison { .. })),
            "got {parallel:?}"
        );
    }

    #[test]
    fn parallel_dispatch_respects_threshold_and_thread_count() {
        // Below the threshold (or with one worker) the job is never
        // built; results agree regardless — this is the documented
        // "threads = 1 is the exact sequential path" contract.
        let cat = catalog();
        let a = Evaluator::new(&cat)
            .with_threads(1)
            .with_parallel_threshold(1)
            .eval(&ahead2_expr())
            .unwrap();
        let b = Evaluator::new(&cat)
            .with_threads(4)
            .with_parallel_threshold(usize::MAX)
            .eval(&ahead2_expr())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_path_resolves_outer_variables_and_quantified_branches_fall_back() {
        // The inner branch's key references the outer `r` — lowered to
        // a constant per outer binding; the outer branch has a
        // quantifier (impure) and stays sequential. Same results.
        let cat = catalog();
        let inner = set_former(vec![Branch::each(
            "y",
            rel("Infront"),
            eq(attr("y", "front"), attr("r", "back")),
        )]);
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            some("x", inner, tru()),
        )]);
        let parallel = Evaluator::new(&cat)
            .with_threads(4)
            .with_parallel_threshold(1)
            .eval(&e)
            .unwrap();
        let reference = Evaluator::new(&cat).force_nested_loop().eval(&e).unwrap();
        assert_eq!(parallel, reference);
    }

    #[test]
    fn cmp_op_comparisons() {
        let nums = Relation::from_tuples(
            Schema::of(&[("n", Domain::Int)]),
            (0..5).map(|i| tuple![i as i64]),
        )
        .unwrap();
        let cat = MapCatalog::new().with_relation("N", nums);
        let mut ev = Evaluator::new(&cat);
        for (op, expect) in [
            (CmpOp::Lt, 2usize),
            (CmpOp::Le, 3),
            (CmpOp::Gt, 2),
            (CmpOp::Ge, 3),
            (CmpOp::Eq, 1),
            (CmpOp::Ne, 4),
        ] {
            let e = set_former(vec![Branch::each(
                "r",
                rel("N"),
                Formula::Cmp(attr("r", "n"), op, cnst(2i64)),
            )]);
            assert_eq!(ev.eval(&e).unwrap().len(), expect, "{op:?}");
        }
    }
}
