//! Typed planner-trace events.
//!
//! The evaluator's planner trace was historically a list of free-form
//! strings. Each entry is now a [`PlanEvent`] value carrying the
//! decision and the numbers behind it — the chosen access path per
//! planned branch, quantifier-probe demotions, decorrelation refusals,
//! and parallel-dispatch degradations — with the legacy strings kept
//! as the `Display` rendering (byte-for-byte, so note-matching
//! consumers are unaffected). Typed events are what `EXPLAIN` renders,
//! what tests assert on, and what flows into `dc-trace` spans.

use std::fmt;

use dc_index::RelationStats;
use dc_value::Schema;

use crate::ast::Branch;
use crate::joinplan::{self, Access, BranchPlan, StepRationale};

/// One step of a chosen branch access path, with the System-R numbers
/// that ranked it: `estimate = cardinality × selectivity` at the
/// moment the position was picked.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessStep {
    /// Binding position (declaration order) this step enumerates.
    pub position: usize,
    /// The bound variable at that position.
    pub var: String,
    /// Attributes probed through a hash index; empty means a scan.
    pub probe_attrs: Vec<String>,
    /// Range cardinality from statistics.
    pub cardinality: usize,
    /// Product of equality-atom selectivities usable at pick time
    /// (1.0 for a scan).
    pub selectivity: f64,
    /// `cardinality × selectivity` — the ordering key.
    pub estimate: f64,
}

impl AccessStep {
    /// True when this step probes an index rather than scanning.
    pub fn is_probe(&self) -> bool {
        !self.probe_attrs.is_empty()
    }
}

/// Why a quantifier-probe atom was demoted back to the residual scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantDemotionReason {
    /// The probed attribute is not in the range's schema.
    AttrNotInSchema,
    /// The key expression cannot be resolved in the enclosing scope.
    KeyUnresolvable,
    /// The key's base type differs from the probed column's.
    KeyTypeMismatch,
}

/// Why a correlated-range decorrelation was refused or abandoned.
#[derive(Debug, Clone, PartialEq)]
pub enum DecorrRefusalReason {
    /// The range is not a shape decorrelation understands.
    UnsupportedShape,
    /// An inner binding range is itself correlated.
    InnerCorrelated,
    /// The predicate does not split into correlation atoms + local
    /// residual.
    NotSplittable,
    /// A correlation atom references an attribute missing from the
    /// range schema.
    AttrNotInSchema {
        /// The missing attribute.
        attr: String,
    },
    /// The correlation columns are single-valued — the probe would not
    /// narrow the bucket.
    NotSelective,
    /// The estimated inner join blows past the profitability bound.
    JoinTooLarge {
        /// The System-R row estimate that tripped the bound.
        estimated_rows: f64,
    },
    /// Evaluating the decorrelated join errored; the rewrite was
    /// abandoned so the reference scan decides error semantics.
    ResidualError,
    /// Bucketing violated a relation constraint; abandoned likewise.
    BucketConstraint,
    /// A refusal recorded by an earlier evaluator was served from the
    /// catalog cache.
    CachedRefusal,
}

/// A structured planner decision, in first-occurrence order. The
/// `Display` rendering reproduces the historical free-form note for
/// every demotion/refusal variant.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanEvent {
    /// The access path chosen for one planned branch (only recorded
    /// when the branch had equality atoms to plan with).
    AccessPath {
        /// Steps in execution order with their ordering rationale.
        steps: Vec<AccessStep>,
        /// System-R estimate of rows the whole branch emits.
        estimated_rows: f64,
    },
    /// A quantifier-probe atom fell back to the residual scan.
    QuantDemotion {
        /// The probed attribute.
        attr: String,
        /// Why it was demoted.
        reason: QuantDemotionReason,
        /// Rendered range syntax (for `AttrNotInSchema`).
        range: String,
        /// Rendered key expression (for `KeyUnresolvable`).
        key: String,
    },
    /// Decorrelation of a correlated quantified range was refused.
    DecorrRefusal {
        /// Why it was refused.
        reason: DecorrRefusalReason,
        /// Rendered range syntax.
        range: String,
    },
    /// A parallel branch dispatch degraded to the sequential path
    /// after a worker panic.
    ParallelDegraded {
        /// The worker's panic message.
        message: String,
    },
}

impl PlanEvent {
    /// True for events that record a fallback from a planned access
    /// path (everything except [`PlanEvent::AccessPath`]) — the subset
    /// that also appears in the string `plan_notes` trace.
    pub fn is_demotion(&self) -> bool {
        !matches!(self, PlanEvent::AccessPath { .. })
    }

    /// Build the access-path event for one planned branch from the
    /// planner's output — shared by the evaluator's live trace and the
    /// serving layer's static `EXPLAIN` preview of a prepared solve.
    pub fn access_path_for(
        branch: &Branch,
        plan: &BranchPlan,
        rationale: &[StepRationale],
        schemas: &[&Schema],
        stats: &[RelationStats],
    ) -> PlanEvent {
        let steps = plan
            .steps
            .iter()
            .zip(rationale)
            .map(|(step, r)| AccessStep {
                position: step.position,
                var: branch.bindings[step.position].0.clone(),
                probe_attrs: match &step.access {
                    Access::Scan => Vec::new(),
                    Access::Probe(atoms) => atoms.iter().map(|a| a.attr.clone()).collect(),
                },
                cardinality: r.cardinality,
                selectivity: r.selectivity,
                estimate: r.estimate,
            })
            .collect();
        PlanEvent::AccessPath {
            steps,
            estimated_rows: joinplan::estimate_branch_rows(branch, schemas, stats),
        }
    }
}

impl fmt::Display for PlanEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanEvent::AccessPath {
                steps,
                estimated_rows,
            } => {
                write!(f, "access path:")?;
                for step in steps {
                    if step.is_probe() {
                        write!(
                            f,
                            " probe {} on [{}] (card={}, sel={:.3}, est={:.0});",
                            step.var,
                            step.probe_attrs.join(", "),
                            step.cardinality,
                            step.selectivity,
                            step.estimate
                        )?;
                    } else {
                        write!(
                            f,
                            " scan {} (card={}, est={:.0});",
                            step.var, step.cardinality, step.estimate
                        )?;
                    }
                }
                write!(f, " branch est={estimated_rows:.0} rows")
            }
            PlanEvent::QuantDemotion {
                attr,
                reason,
                range,
                key,
            } => match reason {
                QuantDemotionReason::AttrNotInSchema => write!(
                    f,
                    "quantifier probe: atom on `{attr}` demoted to residual — \
                     attribute not in range schema ({range})"
                ),
                QuantDemotionReason::KeyUnresolvable => write!(
                    f,
                    "quantifier probe: atom on `{attr}` demoted to residual — \
                     key expression `{key}` unresolvable in enclosing scope"
                ),
                QuantDemotionReason::KeyTypeMismatch => write!(
                    f,
                    "quantifier probe: atom on `{attr}` demoted to residual — \
                     key type does not match probed column"
                ),
            },
            PlanEvent::DecorrRefusal { reason, range } => match reason {
                DecorrRefusalReason::UnsupportedShape => write!(
                    f,
                    "decorrelation: unsupported range shape — residual scan ({range})"
                ),
                DecorrRefusalReason::InnerCorrelated => write!(
                    f,
                    "decorrelation: inner range itself correlated — residual scan ({range})"
                ),
                DecorrRefusalReason::NotSplittable => write!(
                    f,
                    "decorrelation: predicate not splittable into correlation \
                     atoms + local residual — residual scan ({range})"
                ),
                DecorrRefusalReason::AttrNotInSchema { attr } => write!(
                    f,
                    "decorrelation: correlation atom on `{attr}` demoted to \
                     residual — attribute not in range schema ({range})"
                ),
                DecorrRefusalReason::NotSelective => write!(
                    f,
                    "decorrelation: correlation columns not selective \
                     (single-valued) — residual scan ({range})"
                ),
                DecorrRefusalReason::JoinTooLarge { estimated_rows } => write!(
                    f,
                    "decorrelation: estimated inner join too large \
                     ({estimated_rows:.0} rows) — residual scan ({range})"
                ),
                DecorrRefusalReason::ResidualError => write!(
                    f,
                    "decorrelation: residual evaluation errored — \
                     abandoned, residual scan ({range})"
                ),
                DecorrRefusalReason::BucketConstraint => write!(
                    f,
                    "decorrelation: bucket constraint violation — \
                     abandoned, residual scan ({range})"
                ),
                DecorrRefusalReason::CachedRefusal => write!(
                    f,
                    "decorrelation: cached refusal served from catalog \
                     — residual scan ({range})"
                ),
            },
            PlanEvent::ParallelDegraded { message } => write!(
                f,
                "parallel dispatch: worker panicked ({message}) — \
                 branch degraded to the sequential path"
            ),
        }
    }
}

/// A rendered plan report: the typed events plus a human-readable
/// tree, returned by `Database::explain` and `PreparedQuery::explain`.
#[derive(Debug, Clone)]
pub struct Explanation {
    events: Vec<PlanEvent>,
    text: String,
}

impl Explanation {
    /// Assemble an explanation for `header` (the rendered query) from
    /// the planner events of one evaluation; `rows` is the result
    /// cardinality when the query was actually executed.
    pub fn new(header: &str, rows: Option<usize>, events: Vec<PlanEvent>) -> Explanation {
        let mut text = format!("EXPLAIN {header}\n");
        if let Some(rows) = rows {
            text.push_str(&format!("├─ rows: {rows}\n"));
        }
        if events.is_empty() {
            text.push_str("└─ no planner decisions recorded (reference scan only)\n");
        } else {
            for (i, ev) in events.iter().enumerate() {
                let branch = if i + 1 == events.len() {
                    "└─"
                } else {
                    "├─"
                };
                text.push_str(&format!("{branch} {ev}\n"));
            }
        }
        Explanation { events, text }
    }

    /// The typed planner decisions, in first-occurrence order.
    pub fn events(&self) -> &[PlanEvent] {
        &self.events
    }

    /// The rendered report (also available via `Display`).
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Access-path events only.
    pub fn access_paths(&self) -> impl Iterator<Item = &PlanEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, PlanEvent::AccessPath { .. }))
    }

    /// Demotion/refusal events only.
    pub fn demotions(&self) -> impl Iterator<Item = &PlanEvent> {
        self.events.iter().filter(|e| e.is_demotion())
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demotion_renderings_match_legacy_notes() {
        let ev = PlanEvent::DecorrRefusal {
            reason: DecorrRefusalReason::NotSplittable,
            range: "{EACH x IN R: TRUE}".to_string(),
        };
        assert_eq!(
            ev.to_string(),
            "decorrelation: predicate not splittable into correlation atoms + \
             local residual — residual scan ({EACH x IN R: TRUE})"
        );
        let ev = PlanEvent::QuantDemotion {
            attr: "dept".to_string(),
            reason: QuantDemotionReason::KeyTypeMismatch,
            range: String::new(),
            key: String::new(),
        };
        assert_eq!(
            ev.to_string(),
            "quantifier probe: atom on `dept` demoted to residual — key type \
             does not match probed column"
        );
    }

    #[test]
    fn explanation_renders_a_tree() {
        let steps = vec![
            AccessStep {
                position: 0,
                var: "f".to_string(),
                probe_attrs: vec![],
                cardinality: 100,
                selectivity: 1.0,
                estimate: 100.0,
            },
            AccessStep {
                position: 1,
                var: "b".to_string(),
                probe_attrs: vec!["front".to_string()],
                cardinality: 100,
                selectivity: 0.02,
                estimate: 2.0,
            },
        ];
        let ex = Explanation::new(
            "q",
            Some(42),
            vec![PlanEvent::AccessPath {
                steps,
                estimated_rows: 200.0,
            }],
        );
        assert!(ex.text().contains("EXPLAIN q"));
        assert!(ex.text().contains("rows: 42"));
        assert!(ex.text().contains("probe b on [front]"));
        assert_eq!(ex.access_paths().count(), 1);
        assert_eq!(ex.demotions().count(), 0);
    }
}
