//! Ergonomic constructors for writing calculus ASTs in Rust.
//!
//! Examples and tests build the paper's expressions with these helpers;
//! programs in DBPL concrete syntax go through `dc-lang` instead.

use dc_value::Value;

use crate::ast::{ArithOp, Branch, CmpOp, Formula, RangeExpr, ScalarExpr, SetFormer};

/// Named relation range: `rel("Infront")`.
pub fn rel(name: impl Into<String>) -> RangeExpr {
    RangeExpr::Rel(name.into())
}

/// Set former from branches.
pub fn set_former(branches: Vec<Branch>) -> RangeExpr {
    RangeExpr::SetFormer(SetFormer { branches })
}

/// Attribute reference: `attr("r", "front")` is `r.front`.
pub fn attr(var: impl Into<String>, name: impl Into<String>) -> ScalarExpr {
    ScalarExpr::Attr(var.into(), name.into())
}

/// Constant: `cnst(1i64)`, `cnst("table")`.
pub fn cnst(v: impl Into<Value>) -> ScalarExpr {
    ScalarExpr::Const(v.into())
}

/// Scalar parameter reference: `param("Obj")`.
pub fn param(name: impl Into<String>) -> ScalarExpr {
    ScalarExpr::Param(name.into())
}

/// `l + r`
pub fn add(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
    ScalarExpr::Arith(Box::new(l), ArithOp::Add, Box::new(r))
}

/// `l - r`
pub fn sub(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
    ScalarExpr::Arith(Box::new(l), ArithOp::Sub, Box::new(r))
}

/// `l * r`
pub fn mul(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
    ScalarExpr::Arith(Box::new(l), ArithOp::Mul, Box::new(r))
}

/// `l DIV r`
pub fn div(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
    ScalarExpr::Arith(Box::new(l), ArithOp::Div, Box::new(r))
}

/// `l MOD r`
pub fn modulo(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
    ScalarExpr::Arith(Box::new(l), ArithOp::Mod, Box::new(r))
}

/// `TRUE`
pub fn tru() -> Formula {
    Formula::True
}

/// `FALSE`
pub fn fals() -> Formula {
    Formula::False
}

/// `l = r`
pub fn eq(l: ScalarExpr, r: ScalarExpr) -> Formula {
    Formula::Cmp(l, CmpOp::Eq, r)
}

/// `l # r`
pub fn ne(l: ScalarExpr, r: ScalarExpr) -> Formula {
    Formula::Cmp(l, CmpOp::Ne, r)
}

/// `l < r`
pub fn lt(l: ScalarExpr, r: ScalarExpr) -> Formula {
    Formula::Cmp(l, CmpOp::Lt, r)
}

/// `l <= r`
pub fn le(l: ScalarExpr, r: ScalarExpr) -> Formula {
    Formula::Cmp(l, CmpOp::Le, r)
}

/// `l > r`
pub fn gt(l: ScalarExpr, r: ScalarExpr) -> Formula {
    Formula::Cmp(l, CmpOp::Gt, r)
}

/// `l >= r`
pub fn ge(l: ScalarExpr, r: ScalarExpr) -> Formula {
    Formula::Cmp(l, CmpOp::Ge, r)
}

/// `NOT f`
pub fn not(f: Formula) -> Formula {
    f.negate()
}

/// `SOME v IN range (body)`
pub fn some(v: impl Into<String>, range: RangeExpr, body: Formula) -> Formula {
    Formula::Some(v.into(), range, Box::new(body))
}

/// `ALL v IN range (body)`
pub fn all(v: impl Into<String>, range: RangeExpr, body: Formula) -> Formula {
    Formula::All(v.into(), range, Box::new(body))
}

/// `v IN range`
pub fn member(v: impl Into<String>, range: RangeExpr) -> Formula {
    Formula::Member(v.into(), range)
}

/// `<exprs> IN range`
pub fn tuple_in(exprs: Vec<ScalarExpr>, range: RangeExpr) -> Formula {
    Formula::TupleIn(exprs, range)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_ast() {
        assert_eq!(rel("R"), RangeExpr::Rel("R".into()));
        assert_eq!(attr("r", "a"), ScalarExpr::Attr("r".into(), "a".into()));
        assert_eq!(cnst(3i64), ScalarExpr::Const(Value::Int(3)));
        assert!(matches!(
            eq(cnst(1i64), cnst(1i64)),
            Formula::Cmp(_, CmpOp::Eq, _)
        ));
        assert!(matches!(
            add(cnst(1i64), cnst(2i64)),
            ScalarExpr::Arith(_, ArithOp::Add, _)
        ));
        assert!(matches!(some("x", rel("R"), tru()), Formula::Some(..)));
        assert!(matches!(all("x", rel("R"), fals()), Formula::All(..)));
        assert!(matches!(member("x", rel("R")), Formula::Member(..)));
        assert!(matches!(
            tuple_in(vec![cnst(1i64)], rel("R")),
            Formula::TupleIn(..)
        ));
        assert!(matches!(not(tru()), Formula::False));
        for f in [sub, mul, div, modulo] {
            assert!(matches!(f(cnst(1i64), cnst(2i64)), ScalarExpr::Arith(..)));
        }
        for f in [ne, lt, le, gt, ge] {
            assert!(matches!(f(cnst(1i64), cnst(2i64)), Formula::Cmp(..)));
        }
    }
}
