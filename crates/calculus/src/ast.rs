//! Abstract syntax of the DBPL relational calculus fragment.

use std::fmt;

use dc_value::{Domain, Value};

/// A tuple variable name (`r`, `f`, `b`, … in the paper).
pub type Var = String;

/// A relation / selector / constructor / parameter name.
pub type Name = String;

/// Arithmetic operators on scalar expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `DIV`
    Div,
    /// `MOD`
    Mod,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "DIV",
            ArithOp::Mod => "MOD",
        };
        write!(f, "{s}")
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `#` (DBPL inequality)
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with negated meaning (`NOT (a = b)` ⇔ `a # b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Apply the comparison to an [`std::cmp::Ordering`].
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "#",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Value-typed expressions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ScalarExpr {
    /// A literal constant.
    Const(Value),
    /// Attribute access `var.attr` (e.g. `r.front`).
    Attr(Var, String),
    /// A scalar parameter of the enclosing selector/constructor
    /// (e.g. `Obj` in the `hidden_by(Obj: parttype)` selector, §3.1).
    Param(Name),
    /// Arithmetic (`s.number + 1` in the `strange` example, §3.3).
    Arith(Box<ScalarExpr>, ArithOp, Box<ScalarExpr>),
}

/// Truth-typed expressions (the paper's predicates).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// `TRUE`
    True,
    /// `FALSE`
    False,
    /// Comparison of scalars.
    Cmp(ScalarExpr, CmpOp, ScalarExpr),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// Range-coupled existential quantifier `SOME v IN range (body)`.
    Some(Var, RangeExpr, Box<Formula>),
    /// Range-coupled universal quantifier `ALL v IN range (body)`.
    All(Var, RangeExpr, Box<Formula>),
    /// Tuple-variable membership `v IN range`.
    Member(Var, RangeExpr),
    /// Constructed-tuple membership `<e1, …, ek> IN range`.
    TupleIn(Vec<ScalarExpr>, RangeExpr),
}

impl Formula {
    /// `self AND other` with trivial simplification.
    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::True, f) | (f, Formula::True) => f,
            (Formula::False, _) | (_, Formula::False) => Formula::False,
            (a, b) => Formula::And(Box::new(a), Box::new(b)),
        }
    }

    /// `self OR other` with trivial simplification.
    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::False, f) | (f, Formula::False) => f,
            (Formula::True, _) | (_, Formula::True) => Formula::True,
            (a, b) => Formula::Or(Box::new(a), Box::new(b)),
        }
    }

    /// `NOT self` with double-negation elimination.
    pub fn negate(self) -> Formula {
        match self {
            Formula::Not(inner) => *inner,
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            f => Formula::Not(Box::new(f)),
        }
    }
}

/// Relation-typed expressions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RangeExpr {
    /// A named relation — a base relation variable, or a formal relation
    /// parameter bound by the enclosing selector/constructor (the
    /// `Catalog` in scope decides).
    Rel(Name),
    /// Selector application `base[selector(args)]` (§2.3).
    Selected {
        /// The relation being selected from.
        base: Box<RangeExpr>,
        /// Selector name.
        selector: Name,
        /// Actual scalar arguments.
        args: Vec<ScalarExpr>,
    },
    /// Constructor application `base{constructor(args)}` (§3).
    Constructed {
        /// The relation being expanded.
        base: Box<RangeExpr>,
        /// Constructor name.
        constructor: Name,
        /// Actual relation arguments (e.g. `Ontop` in
        /// `Infront{ahead(Ontop)}`).
        args: Vec<RangeExpr>,
        /// Actual scalar arguments, matching the constructor's scalar
        /// parameters (§4 discusses "constant values in restrictive
        /// terms of constructor definition").
        scalar_args: Vec<ScalarExpr>,
    },
    /// A set former `{branch, branch, …}` — the union of its branches.
    SetFormer(SetFormer),
}

impl RangeExpr {
    /// Convenience: named relation.
    pub fn rel(name: impl Into<Name>) -> RangeExpr {
        RangeExpr::Rel(name.into())
    }

    /// Wrap in a selector application.
    pub fn select(self, selector: impl Into<Name>, args: Vec<ScalarExpr>) -> RangeExpr {
        RangeExpr::Selected {
            base: Box::new(self),
            selector: selector.into(),
            args,
        }
    }

    /// Wrap in a constructor application with no scalar arguments.
    pub fn construct(self, constructor: impl Into<Name>, args: Vec<RangeExpr>) -> RangeExpr {
        self.construct_with(constructor, args, vec![])
    }

    /// Wrap in a constructor application with scalar arguments.
    pub fn construct_with(
        self,
        constructor: impl Into<Name>,
        args: Vec<RangeExpr>,
        scalar_args: Vec<ScalarExpr>,
    ) -> RangeExpr {
        RangeExpr::Constructed {
            base: Box::new(self),
            constructor: constructor.into(),
            args,
            scalar_args,
        }
    }
}

/// A set former: the union of one or more branches, as in the paper's
/// two-branch `ahead` body (§3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SetFormer {
    /// The branches; the set former denotes their union.
    pub branches: Vec<Branch>,
}

/// One branch of a set former:
/// `target OF EACH v1 IN r1, …, EACH vk IN rk : predicate`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Branch {
    /// What each satisfying binding combination contributes.
    pub target: Target,
    /// The range-coupled tuple variables, in binding order.
    pub bindings: Vec<(Var, RangeExpr)>,
    /// The selection predicate.
    pub predicate: Formula,
}

impl Branch {
    /// Branch yielding the bound tuple itself: `EACH v IN range: pred`.
    pub fn each(var: impl Into<Var>, range: RangeExpr, predicate: Formula) -> Branch {
        let var = var.into();
        Branch {
            target: Target::Var(var.clone()),
            bindings: vec![(var, range)],
            predicate,
        }
    }

    /// Branch with an explicit tuple target:
    /// `<exprs> OF EACH … : pred`.
    pub fn projecting(
        target: Vec<ScalarExpr>,
        bindings: Vec<(Var, RangeExpr)>,
        predicate: Formula,
    ) -> Branch {
        Branch {
            target: Target::Tuple(target),
            bindings,
            predicate,
        }
    }
}

/// The output clause of a branch.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Target {
    /// The whole tuple bound to a variable (`EACH r IN Rel: TRUE`).
    Var(Var),
    /// A constructed tuple (`<f.front, b.back> OF …`).
    Tuple(Vec<ScalarExpr>),
}

/// A selector definition (§2.3):
///
/// ```text
/// SELECTOR hidden_by (Obj: parttype) FOR Rel: infrontrel;
/// BEGIN EACH r IN Rel: r.front = Obj END hidden_by
/// ```
///
/// The selector names a predicate over one element variable
/// (`element_var`, ranging over the relation it is applied to) with
/// scalar parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectorDef {
    /// Selector name.
    pub name: Name,
    /// The element variable (e.g. `r`).
    pub element_var: Var,
    /// Formal scalar parameters with their domains.
    pub params: Vec<(Name, Domain)>,
    /// The selection predicate over `element_var`, the parameters, and
    /// any catalog relations (referential-integrity selectors quantify
    /// over other relations, §2.3).
    pub predicate: Formula,
}

// ---------------------------------------------------------------------
// Display: DBPL-flavoured concrete syntax. Round-trips through the
// dc-lang parser (tested there).
// ---------------------------------------------------------------------

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Const(v) => write!(f, "{v}"),
            ScalarExpr::Attr(v, a) => write!(f, "{v}.{a}"),
            ScalarExpr::Param(p) => write!(f, "{p}"),
            ScalarExpr::Arith(l, op, r) => write!(f, "({l} {op} {r})"),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "TRUE"),
            Formula::False => write!(f, "FALSE"),
            Formula::Cmp(l, op, r) => write!(f, "{l} {op} {r}"),
            Formula::And(l, r) => write!(f, "({l} AND {r})"),
            Formula::Or(l, r) => write!(f, "({l} OR {r})"),
            Formula::Not(inner) => write!(f, "NOT ({inner})"),
            Formula::Some(v, range, body) => write!(f, "SOME {v} IN {range} ({body})"),
            Formula::All(v, range, body) => write!(f, "ALL {v} IN {range} ({body})"),
            Formula::Member(v, range) => write!(f, "{v} IN {range}"),
            Formula::TupleIn(exprs, range) => {
                write!(f, "<")?;
                for (i, e) in exprs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "> IN {range}")
            }
        }
    }
}

impl fmt::Display for RangeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RangeExpr::Rel(n) => write!(f, "{n}"),
            RangeExpr::Selected {
                base,
                selector,
                args,
            } => {
                write!(f, "{base}[{selector}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")]")
            }
            RangeExpr::Constructed {
                base,
                constructor,
                args,
                scalar_args,
            } => {
                write!(f, "{base}{{{constructor}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                for (i, s) in scalar_args.iter().enumerate() {
                    if i > 0 || !args.is_empty() {
                        write!(f, "; ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")}}")
            }
            RangeExpr::SetFormer(sf) => write!(f, "{sf}"),
        }
    }
}

impl fmt::Display for SetFormer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, b) in self.branches.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Branch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Target::Tuple(exprs) = &self.target {
            write!(f, "<")?;
            for (i, e) in exprs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
            write!(f, "> OF ")?;
        }
        for (i, (v, r)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "EACH {v} IN {r}")?;
        }
        write!(f, ": {}", self.predicate)
    }
}

impl fmt::Display for SelectorDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECTOR {}(", self.name)?;
        for (i, (p, d)) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{p}: {d}")?;
        }
        write!(
            f,
            ") FOR Rel; BEGIN EACH {} IN Rel: {} END {}",
            self.element_var, self.predicate, self.name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_value::Value;

    #[test]
    fn cmp_negate_involution() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn cmp_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.eval(Equal));
        assert!(!CmpOp::Eq.eval(Less));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Le.eval(Less));
        assert!(!CmpOp::Le.eval(Greater));
        assert!(CmpOp::Ne.eval(Greater));
    }

    #[test]
    fn formula_simplifications() {
        let f = Formula::True.and(Formula::Cmp(
            ScalarExpr::Const(Value::Int(1)),
            CmpOp::Eq,
            ScalarExpr::Const(Value::Int(1)),
        ));
        assert!(matches!(f, Formula::Cmp(..)));
        assert_eq!(Formula::False.and(Formula::True), Formula::False);
        assert_eq!(Formula::False.or(Formula::True), Formula::True);
        assert_eq!(Formula::True.negate(), Formula::False);
        let g = Formula::Member("r".into(), RangeExpr::rel("R"));
        assert_eq!(g.clone().negate().negate(), g);
    }

    #[test]
    fn display_ahead_body_branch() {
        // `<f.front, b.back> OF EACH f IN Rel, EACH b IN Rel: f.back = b.front`
        let b = Branch::projecting(
            vec![
                ScalarExpr::Attr("f".into(), "front".into()),
                ScalarExpr::Attr("b".into(), "back".into()),
            ],
            vec![
                ("f".into(), RangeExpr::rel("Rel")),
                ("b".into(), RangeExpr::rel("Rel")),
            ],
            Formula::Cmp(
                ScalarExpr::Attr("f".into(), "back".into()),
                CmpOp::Eq,
                ScalarExpr::Attr("b".into(), "front".into()),
            ),
        );
        assert_eq!(
            b.to_string(),
            "<f.front, b.back> OF EACH f IN Rel, EACH b IN Rel: f.back = b.front"
        );
    }

    #[test]
    fn display_applications() {
        let e = RangeExpr::rel("Infront")
            .select("hidden_by", vec![ScalarExpr::Const(Value::str("table"))])
            .construct("ahead", vec![RangeExpr::rel("Ontop")]);
        assert_eq!(e.to_string(), "Infront[hidden_by(\"table\")]{ahead(Ontop)}");
    }

    #[test]
    fn branch_each_binds_target() {
        let b = Branch::each("r", RangeExpr::rel("Infront"), Formula::True);
        assert_eq!(b.to_string(), "EACH r IN Infront: TRUE");
        assert!(matches!(b.target, Target::Var(ref v) if v == "r"));
    }
}
