//! Static type checking of calculus expressions.
//!
//! This is the "type-checking level" of the paper's three-level strategy
//! (§4): it runs once per definition/query at compile time, before any
//! data is touched. It verifies:
//!
//! * relation names resolve and attribute references exist,
//! * comparison operands have comparable domains and arithmetic is
//!   numeric,
//! * selector/constructor applications match their signatures,
//! * set-former branches are union-compatible,
//! * quantifier ranges are relation-typed expressions.
//!
//! It deliberately does **not** check positivity — that is a separate
//! analysis ([`crate::positivity`]) because it applies only to recursive
//! definitions, per §3.3.

use dc_value::{Domain, Schema};

use crate::ast::{Branch, Formula, Name, RangeExpr, ScalarExpr, SelectorDef, Target, Var};
use crate::error::EvalError;
use crate::eval::value_domain;

/// Signature of a constructor visible to the type checker.
#[derive(Debug, Clone)]
pub struct ConstructorSig {
    /// Constructor name.
    pub name: Name,
    /// Schema of the formal base relation parameter.
    pub base_schema: Schema,
    /// Schemas of the formal relation parameters, in order.
    pub rel_params: Vec<Schema>,
    /// Formal scalar parameters with their domains.
    pub scalar_params: Vec<(Name, Domain)>,
    /// Result schema.
    pub result: Schema,
}

/// Name → schema resolution for static checking.
pub trait SchemaCatalog {
    /// Schema of a named relation (or formal relation parameter in
    /// scope).
    fn relation_schema(&self, name: &str) -> Result<Schema, EvalError>;
    /// Selector definition lookup.
    fn selector_def(&self, name: &str) -> Result<&SelectorDef, EvalError> {
        Err(EvalError::UnknownSelector(name.to_string()))
    }
    /// Constructor signature lookup.
    fn constructor_sig(&self, name: &str) -> Result<&ConstructorSig, EvalError> {
        Err(EvalError::UnknownConstructor(name.to_string()))
    }
    /// Domain of a free scalar parameter in scope.
    fn param_domain(&self, name: &str) -> Result<Domain, EvalError> {
        Err(EvalError::UnknownParam(name.to_string()))
    }
}

/// A [`SchemaCatalog`] from vectors, used for tests and by `dc-lang`.
#[derive(Default)]
pub struct MapSchemaCatalog {
    /// Named relation schemas.
    pub relations: Vec<(Name, Schema)>,
    /// Selector definitions.
    pub selectors: Vec<SelectorDef>,
    /// Constructor signatures.
    pub constructors: Vec<ConstructorSig>,
    /// In-scope scalar parameters.
    pub params: Vec<(Name, Domain)>,
}

impl SchemaCatalog for MapSchemaCatalog {
    fn relation_schema(&self, name: &str) -> Result<Schema, EvalError> {
        self.relations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.clone())
            .ok_or_else(|| EvalError::UnknownRelation(name.to_string()))
    }

    fn selector_def(&self, name: &str) -> Result<&SelectorDef, EvalError> {
        self.selectors
            .iter()
            .find(|d| d.name == name)
            .ok_or_else(|| EvalError::UnknownSelector(name.to_string()))
    }

    fn constructor_sig(&self, name: &str) -> Result<&ConstructorSig, EvalError> {
        self.constructors
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| EvalError::UnknownConstructor(name.to_string()))
    }

    fn param_domain(&self, name: &str) -> Result<Domain, EvalError> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.clone())
            .ok_or_else(|| EvalError::UnknownParam(name.to_string()))
    }
}

/// Scope of bound tuple variables during checking.
type Scope = Vec<(Var, Schema)>;

/// Check a closed range expression; returns its schema.
pub fn check_range(range: &RangeExpr, cat: &dyn SchemaCatalog) -> Result<Schema, EvalError> {
    check_range_scoped(range, cat, &mut Vec::new())
}

fn check_range_scoped(
    range: &RangeExpr,
    cat: &dyn SchemaCatalog,
    scope: &mut Scope,
) -> Result<Schema, EvalError> {
    match range {
        RangeExpr::Rel(n) => cat.relation_schema(n),
        RangeExpr::Selected {
            base,
            selector,
            args,
        } => {
            let base_schema = check_range_scoped(base, cat, scope)?;
            let def = cat.selector_def(selector)?;
            if args.len() != def.params.len() {
                return Err(EvalError::ArityMismatch {
                    name: def.name.clone(),
                    expected: def.params.len(),
                    actual: args.len(),
                });
            }
            for ((_, pdom), arg) in def.params.iter().zip(args) {
                let adom = check_scalar(arg, cat, scope)?;
                if !adom.comparable_with(pdom) {
                    return Err(EvalError::Type(dc_value::TypeError::DomainMismatch {
                        expected: pdom.clone(),
                        value: dc_value::Value::str(format!("<{adom}>")),
                    }));
                }
            }
            // A selector yields a sub-relation of its base.
            Ok(base_schema)
        }
        RangeExpr::Constructed {
            base,
            constructor,
            args,
            scalar_args,
        } => {
            let base_schema = check_range_scoped(base, cat, scope)?;
            let sig = cat.constructor_sig(constructor)?;
            if !base_schema.union_compatible(&sig.base_schema) {
                return Err(EvalError::Type(dc_value::TypeError::SchemaMismatch {
                    context: format!(
                        "base of `{constructor}` application is not compatible with its FOR type"
                    ),
                }));
            }
            if args.len() != sig.rel_params.len() {
                return Err(EvalError::ArityMismatch {
                    name: sig.name.clone(),
                    expected: sig.rel_params.len(),
                    actual: args.len(),
                });
            }
            let result = sig.result.clone();
            let rel_params = sig.rel_params.clone();
            let scalar_params = sig.scalar_params.clone();
            if scalar_args.len() != scalar_params.len() {
                return Err(EvalError::ArityMismatch {
                    name: constructor.clone(),
                    expected: scalar_params.len(),
                    actual: scalar_args.len(),
                });
            }
            for ((_, pdom), arg) in scalar_params.iter().zip(scalar_args) {
                let adom = check_scalar(arg, cat, scope)?;
                if !adom.comparable_with(pdom) {
                    return Err(EvalError::Type(dc_value::TypeError::DomainMismatch {
                        expected: pdom.clone(),
                        value: dc_value::Value::str(format!("<{adom}>")),
                    }));
                }
            }
            for (formal, actual) in rel_params.iter().zip(args) {
                let actual_schema = check_range_scoped(actual, cat, scope)?;
                if !actual_schema.union_compatible(formal) {
                    return Err(EvalError::Type(dc_value::TypeError::SchemaMismatch {
                        context: format!(
                            "relation argument of `{constructor}` has incompatible schema"
                        ),
                    }));
                }
            }
            Ok(result)
        }
        RangeExpr::SetFormer(sf) => {
            if sf.branches.is_empty() {
                return Err(EvalError::Other("set former with no branches".into()));
            }
            let mut result: Option<Schema> = None;
            for b in &sf.branches {
                let schema = check_branch(b, cat, scope)?;
                match &result {
                    None => result = Some(schema),
                    Some(first) => {
                        if !first.union_compatible(&schema) {
                            return Err(EvalError::Type(dc_value::TypeError::SchemaMismatch {
                                context: "set-former branches are not union-compatible".into(),
                            }));
                        }
                    }
                }
            }
            // The empty-branches case returned above, so at least one
            // iteration populated `result`.
            result.ok_or_else(|| EvalError::Other("set former with no branches".into()))
        }
    }
}

fn check_branch(
    branch: &Branch,
    cat: &dyn SchemaCatalog,
    scope: &mut Scope,
) -> Result<Schema, EvalError> {
    let mark = scope.len();
    for (v, range) in &branch.bindings {
        let schema = check_range_scoped(range, cat, scope)?;
        scope.push((v.clone(), schema));
    }
    let result = (|| {
        check_formula_scoped(&branch.predicate, cat, scope)?;
        match &branch.target {
            Target::Var(v) => scope
                .iter()
                .rev()
                .find(|(sv, _)| sv == v)
                .map(|(_, s)| s.clone())
                .ok_or_else(|| EvalError::UnboundVariable(v.clone())),
            Target::Tuple(exprs) => {
                let mut attrs = Vec::with_capacity(exprs.len());
                for (i, e) in exprs.iter().enumerate() {
                    let d = check_scalar(e, cat, scope)?;
                    let name = match e {
                        ScalarExpr::Attr(_, a) => a.clone(),
                        ScalarExpr::Param(p) => p.clone(),
                        _ => format!("f{i}"),
                    };
                    attrs.push(dc_value::Attribute::new(name, d.base()));
                }
                Ok(Schema::new(attrs))
            }
        }
    })();
    scope.truncate(mark);
    result
}

/// Check a closed formula.
pub fn check_formula(f: &Formula, cat: &dyn SchemaCatalog) -> Result<(), EvalError> {
    check_formula_scoped(f, cat, &mut Vec::new())
}

/// Check a formula under a pre-populated variable scope (used for
/// selector bodies, where the element variable is in scope).
pub fn check_formula_in_scope(
    f: &Formula,
    cat: &dyn SchemaCatalog,
    scope: &[(Var, Schema)],
) -> Result<(), EvalError> {
    let mut scope: Scope = scope.to_vec();
    check_formula_scoped(f, cat, &mut scope)
}

fn check_formula_scoped(
    f: &Formula,
    cat: &dyn SchemaCatalog,
    scope: &mut Scope,
) -> Result<(), EvalError> {
    match f {
        Formula::True | Formula::False => Ok(()),
        Formula::Cmp(l, _, r) => {
            let ld = check_scalar(l, cat, scope)?;
            let rd = check_scalar(r, cat, scope)?;
            if ld.comparable_with(&rd) {
                Ok(())
            } else {
                Err(EvalError::CrossTypeComparison {
                    lhs: ld.to_string(),
                    rhs: rd.to_string(),
                })
            }
        }
        Formula::And(a, b) | Formula::Or(a, b) => {
            check_formula_scoped(a, cat, scope)?;
            check_formula_scoped(b, cat, scope)
        }
        Formula::Not(inner) => check_formula_scoped(inner, cat, scope),
        Formula::Some(v, range, body) | Formula::All(v, range, body) => {
            let schema = check_range_scoped(range, cat, scope)?;
            scope.push((v.clone(), schema));
            let r = check_formula_scoped(body, cat, scope);
            scope.pop();
            r
        }
        Formula::Member(v, range) => {
            let vschema = scope
                .iter()
                .rev()
                .find(|(sv, _)| sv == v)
                .map(|(_, s)| s.clone())
                .ok_or_else(|| EvalError::UnboundVariable(v.clone()))?;
            let rschema = check_range_scoped(range, cat, scope)?;
            if vschema.union_compatible(&rschema) {
                Ok(())
            } else {
                Err(EvalError::Type(dc_value::TypeError::SchemaMismatch {
                    context: format!("`{v} IN …` with incompatible schemas"),
                }))
            }
        }
        Formula::TupleIn(exprs, range) => {
            let rschema = check_range_scoped(range, cat, scope)?;
            if exprs.len() != rschema.arity() {
                return Err(EvalError::Type(dc_value::TypeError::ArityMismatch {
                    expected: rschema.arity(),
                    actual: exprs.len(),
                }));
            }
            for (i, e) in exprs.iter().enumerate() {
                let d = check_scalar(e, cat, scope)?;
                if !d.comparable_with(rschema.domain(i)) {
                    return Err(EvalError::Type(dc_value::TypeError::SchemaMismatch {
                        context: format!("component {i} of tuple membership"),
                    }));
                }
            }
            Ok(())
        }
    }
}

/// Check a scalar expression; returns its domain.
pub fn check_scalar(
    e: &ScalarExpr,
    cat: &dyn SchemaCatalog,
    scope: &Scope,
) -> Result<Domain, EvalError> {
    match e {
        ScalarExpr::Const(v) => Ok(value_domain(v)),
        ScalarExpr::Param(p) => cat.param_domain(p),
        ScalarExpr::Attr(v, a) => {
            let schema = scope
                .iter()
                .rev()
                .find(|(sv, _)| sv == v)
                .map(|(_, s)| s.clone())
                .ok_or_else(|| EvalError::UnboundVariable(v.clone()))?;
            let pos = schema.position(a)?;
            Ok(schema.domain(pos).clone())
        }
        ScalarExpr::Arith(l, op, r) => {
            let ld = check_scalar(l, cat, scope)?;
            let rd = check_scalar(r, cat, scope)?;
            if !ld.is_numeric() || !rd.is_numeric() || !ld.comparable_with(&rd) {
                return Err(EvalError::Value(
                    dc_value::ValueError::IncompatibleOperands {
                        op: match op {
                            crate::ast::ArithOp::Add => "+",
                            crate::ast::ArithOp::Sub => "-",
                            crate::ast::ArithOp::Mul => "*",
                            crate::ast::ArithOp::Div => "DIV",
                            crate::ast::ArithOp::Mod => "MOD",
                        },
                        lhs: dc_value::Value::str(ld.to_string()),
                        rhs: dc_value::Value::str(rd.to_string()),
                    },
                ));
            }
            Ok(ld.base())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Branch;
    use crate::builder::*;

    fn catalog() -> MapSchemaCatalog {
        MapSchemaCatalog {
            relations: vec![
                (
                    "Infront".into(),
                    Schema::of(&[("front", Domain::Str), ("back", Domain::Str)]),
                ),
                ("N".into(), Schema::of(&[("n", Domain::Int)])),
            ],
            selectors: vec![SelectorDef {
                name: "hidden_by".into(),
                element_var: "r".into(),
                params: vec![("Obj".into(), Domain::Str)],
                predicate: eq(attr("r", "front"), param("Obj")),
            }],
            constructors: vec![ConstructorSig {
                name: "ahead".into(),
                base_schema: Schema::of(&[("front", Domain::Str), ("back", Domain::Str)]),
                rel_params: vec![],
                scalar_params: vec![],
                result: Schema::of(&[("head", Domain::Str), ("tail", Domain::Str)]),
            }],
            params: vec![],
        }
    }

    #[test]
    fn base_relation_schema() {
        let s = check_range(&rel("Infront"), &catalog()).unwrap();
        assert_eq!(s.arity(), 2);
        assert!(check_range(&rel("Missing"), &catalog()).is_err());
    }

    #[test]
    fn set_former_schema_and_compat() {
        let e = set_former(vec![
            Branch::each("r", rel("Infront"), tru()),
            Branch::projecting(
                vec![attr("f", "front"), attr("b", "back")],
                vec![("f".into(), rel("Infront")), ("b".into(), rel("Infront"))],
                eq(attr("f", "back"), attr("b", "front")),
            ),
        ]);
        let s = check_range(&e, &catalog()).unwrap();
        assert_eq!(s.arity(), 2);

        // Incompatible second branch.
        let bad = set_former(vec![
            Branch::each("r", rel("Infront"), tru()),
            Branch::each("x", rel("N"), tru()),
        ]);
        assert!(check_range(&bad, &catalog()).is_err());
    }

    #[test]
    fn unknown_attribute_caught() {
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            eq(attr("r", "top"), cnst("x")),
        )]);
        assert!(matches!(
            check_range(&e, &catalog()),
            Err(EvalError::Type(
                dc_value::TypeError::UnknownAttribute { .. }
            ))
        ));
    }

    #[test]
    fn cross_type_comparison_caught() {
        let e = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            eq(attr("r", "front"), cnst(1i64)),
        )]);
        assert!(matches!(
            check_range(&e, &catalog()),
            Err(EvalError::CrossTypeComparison { .. })
        ));
    }

    #[test]
    fn selector_application_checked() {
        let ok = rel("Infront").select("hidden_by", vec![cnst("table")]);
        assert!(check_range(&ok, &catalog()).is_ok());

        let wrong_arity = rel("Infront").select("hidden_by", vec![]);
        assert!(matches!(
            check_range(&wrong_arity, &catalog()),
            Err(EvalError::ArityMismatch { .. })
        ));

        let wrong_type = rel("Infront").select("hidden_by", vec![cnst(1i64)]);
        assert!(check_range(&wrong_type, &catalog()).is_err());
    }

    #[test]
    fn constructor_application_checked() {
        let ok = rel("Infront").construct("ahead", vec![]);
        let s = check_range(&ok, &catalog()).unwrap();
        assert_eq!(s.attributes()[0].name, "head");

        let wrong_base = rel("N").construct("ahead", vec![]);
        assert!(check_range(&wrong_base, &catalog()).is_err());

        let wrong_args = rel("Infront").construct("ahead", vec![rel("N")]);
        assert!(matches!(
            check_range(&wrong_args, &catalog()),
            Err(EvalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn arith_type_rules() {
        let ok = set_former(vec![Branch::projecting(
            vec![add(attr("r", "n"), cnst(1i64))],
            vec![("r".into(), rel("N"))],
            tru(),
        )]);
        assert!(check_range(&ok, &catalog()).is_ok());

        let bad = set_former(vec![Branch::projecting(
            vec![add(attr("r", "n"), cnst("x"))],
            vec![("r".into(), rel("N"))],
            tru(),
        )]);
        assert!(check_range(&bad, &catalog()).is_err());
    }

    #[test]
    fn quantifier_scoping() {
        // ALL x IN N (x.n < r.n) with r from the outer branch: fine.
        let e = set_former(vec![Branch::each(
            "r",
            rel("N"),
            all("x", rel("N"), lt(attr("x", "n"), attr("r", "n"))),
        )]);
        assert!(check_range(&e, &catalog()).is_ok());

        // Variable leaks out of quantifier scope: error.
        let bad = set_former(vec![Branch::each(
            "r",
            rel("N"),
            some("x", rel("N"), tru()).and(eq(attr("x", "n"), cnst(1i64))),
        )]);
        assert!(matches!(
            check_range(&bad, &catalog()),
            Err(EvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn membership_checked() {
        let ok = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            member("r", rel("Infront")),
        )]);
        assert!(check_range(&ok, &catalog()).is_ok());

        let bad = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            member("r", rel("N")),
        )]);
        assert!(check_range(&bad, &catalog()).is_err());

        let tuple_ok = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            tuple_in(vec![attr("r", "back"), attr("r", "front")], rel("Infront")),
        )]);
        assert!(check_range(&tuple_ok, &catalog()).is_ok());

        let tuple_bad_arity = set_former(vec![Branch::each(
            "r",
            rel("Infront"),
            tuple_in(vec![attr("r", "back")], rel("Infront")),
        )]);
        assert!(check_range(&tuple_bad_arity, &catalog()).is_err());
    }

    #[test]
    fn formula_in_scope_for_selector_bodies() {
        let cat = catalog();
        let schema = cat.relation_schema("Infront").unwrap();
        let pred = eq(attr("r", "front"), cnst("x"));
        assert!(check_formula_in_scope(&pred, &cat, &[("r".into(), schema)]).is_ok());
        assert!(check_formula(&pred, &cat).is_err()); // r unbound
    }
}
