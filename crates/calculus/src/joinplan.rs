//! Join planning for set-former branches: turn conjunctive equality
//! predicates into indexed access paths.
//!
//! The paper's set-oriented evaluation claim (§3) assumes the engine
//! evaluates a branch such as
//!
//! ```text
//! <f.front, b.back> OF EACH f, b IN Infront: f.back = b.front
//! ```
//!
//! as a *join*, not as a filtered cross product. The reference
//! evaluator's nested loops enumerate `|Infront|²` combinations; this
//! module recovers the join structure statically so the evaluator can
//! run an **index-nested-loop join** instead: scan one range, and for
//! every other range probe a [`dc_index::HashIndex`] keyed on the
//! equality columns, touching only matching tuples.
//!
//! The pass has two halves:
//!
//! * [`extract_eq_atoms`] walks the branch predicate's top-level
//!   conjunction and collects equality atoms `x.a = rhs` where `x` is a
//!   branch-bound variable and `rhs` is a constant, a parameter, an
//!   outer (enclosing-scope) attribute, or another branch variable's
//!   attribute. Atoms under `OR` / `NOT` / quantifiers are *not*
//!   extracted — they stay in the residual predicate.
//! * [`plan_branch`] orders the branch's binding positions greedily by
//!   estimated cost, using [`dc_index::RelationStats`] cardinalities and
//!   the System-R `1/distinct` equality selectivity: at each step it
//!   picks the cheapest position, preferring positions whose equality
//!   atoms are fully bound by earlier steps (an index probe) over full
//!   scans.
//!
//! The plan is *advisory*: the executor re-evaluates the full predicate
//! for every surviving combination, so a plan can only skip
//! combinations that equality atoms already reject — semantics
//! (including error semantics for the residual) are unchanged. The
//! executor also *demotes* atoms it cannot realise safely (unknown
//! parameters, unresolvable outer variables, cross-type keys) back to
//! the residual, so planning never has to be conservative about
//! evaluation-time concerns.

use std::collections::{BTreeMap, BTreeSet};

use dc_index::RelationStats;
use dc_value::Schema;

use crate::ast::{Branch, CmpOp, Formula, Name, RangeExpr, ScalarExpr, SetFormer, Target, Var};
use crate::rewrite;

/// The non-probed side of an equality atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeySource {
    /// `attr` of the branch variable bound at `position` — a genuine
    /// join key, usable once that position is bound.
    Binding {
        /// Binding position (index into `branch.bindings`).
        position: usize,
        /// Attribute name on that binding's range.
        attr: String,
    },
    /// An expression free of *branch* variables: a constant, a
    /// parameter, or an outer variable's attribute. Usable immediately.
    Free(ScalarExpr),
}

/// One usable equality atom: `bindings[position].attr = source`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EqAtom {
    /// The probed binding position.
    pub position: usize,
    /// The probed attribute name.
    pub attr: String,
    /// The key-producing side.
    pub source: KeySource,
}

/// How one binding position is enumerated by the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Access {
    /// Iterate every tuple of the range.
    Scan,
    /// Probe a hash index on the atoms' attributes with keys computed
    /// from already-bound values.
    Probe(Vec<EqAtom>),
}

/// One step of a branch plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// The binding position this step enumerates.
    pub position: usize,
    /// Scan or probe.
    pub access: Access,
}

/// An ordered access plan covering every binding position of a branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchPlan {
    /// Steps in execution order; each binding position appears exactly
    /// once.
    pub steps: Vec<PlanStep>,
}

impl BranchPlan {
    /// Does the plan use at least one index probe? (A probe-free plan
    /// in declaration order is exactly the reference nested loop.)
    pub fn has_probe(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s.access, Access::Probe(_)))
    }

    /// The trivial plan: scan every position in declaration order.
    pub fn all_scans(n: usize) -> BranchPlan {
        BranchPlan {
            steps: (0..n)
                .map(|position| PlanStep {
                    position,
                    access: Access::Scan,
                })
                .collect(),
        }
    }
}

/// Does the expression avoid every branch variable? (Then it is
/// evaluable before the branch loops start: constants, parameters,
/// outer variables.)
fn free_of_branch_vars(e: &ScalarExpr, branch_vars: &[&Var]) -> bool {
    match e {
        ScalarExpr::Const(_) | ScalarExpr::Param(_) => true,
        ScalarExpr::Attr(v, _) => !branch_vars.contains(&v),
        ScalarExpr::Arith(l, _, r) => {
            free_of_branch_vars(l, branch_vars) && free_of_branch_vars(r, branch_vars)
        }
    }
}

/// `e` as `position.attr` of a branch variable, if it is exactly that.
fn as_branch_attr(e: &ScalarExpr, branch: &Branch) -> Option<(usize, String)> {
    if let ScalarExpr::Attr(v, a) = e {
        // Innermost declaration wins, matching evaluator name lookup.
        branch
            .bindings
            .iter()
            .rposition(|(bv, _)| bv == v)
            .map(|pos| (pos, a.clone()))
    } else {
        None
    }
}

/// Flatten the top-level conjunction of a formula.
fn conjuncts(f: &Formula) -> Vec<&Formula> {
    let mut out = Vec::new();
    let mut stack = vec![f];
    while let Some(g) = stack.pop() {
        match g {
            Formula::And(a, b) => {
                // Right child first, so popping yields left-to-right.
                stack.push(b);
                stack.push(a);
            }
            other => out.push(other),
        }
    }
    out
}

/// Extract the equality atoms of a branch usable as probe keys.
///
/// Only top-level conjuncts of the form `x.a = rhs` (or mirrored)
/// qualify, where `x` is a branch variable and `rhs` is either free of
/// branch variables ([`KeySource::Free`]) or another branch variable's
/// attribute ([`KeySource::Binding`], emitted symmetrically for both
/// directions). Branches with shadowed (duplicate) binding names yield
/// no atoms: reordering their loops would change name resolution.
pub fn extract_eq_atoms(branch: &Branch) -> Vec<EqAtom> {
    let branch_vars: Vec<&Var> = branch.bindings.iter().map(|(v, _)| v).collect();
    {
        let mut seen = branch_vars.clone();
        seen.sort();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Vec::new();
        }
    }
    let mut atoms = Vec::new();
    for c in conjuncts(&branch.predicate) {
        let Formula::Cmp(l, CmpOp::Eq, r) = c else {
            continue;
        };
        let lb = as_branch_attr(l, branch);
        let rb = as_branch_attr(r, branch);
        match (lb, rb) {
            (Some((lp, la)), Some((rp, ra))) if lp != rp => {
                atoms.push(EqAtom {
                    position: lp,
                    attr: la.clone(),
                    source: KeySource::Binding {
                        position: rp,
                        attr: ra.clone(),
                    },
                });
                atoms.push(EqAtom {
                    position: rp,
                    attr: ra,
                    source: KeySource::Binding {
                        position: lp,
                        attr: la,
                    },
                });
            }
            (Some((lp, la)), None) if free_of_branch_vars(r, &branch_vars) => {
                atoms.push(EqAtom {
                    position: lp,
                    attr: la,
                    source: KeySource::Free(r.clone()),
                });
            }
            (None, Some((rp, ra))) if free_of_branch_vars(l, &branch_vars) => {
                atoms.push(EqAtom {
                    position: rp,
                    attr: ra,
                    source: KeySource::Free(l.clone()),
                });
            }
            _ => {}
        }
    }
    atoms
}

/// One usable equality atom of a quantified subformula
/// (`SOME x IN R: … x.attr = key …` or the `ALL` dual): the probed
/// attribute on the quantified range, and the key expression, which is
/// free of the quantified variable and therefore evaluable in the
/// *enclosing* scope before the range is enumerated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantAtom {
    /// The probed attribute name on the quantified range.
    pub attr: String,
    /// The key-producing expression (may reference outer variables,
    /// parameters, and constants — anything but the quantified
    /// variable).
    pub key: ScalarExpr,
}

/// Does the expression mention the quantified variable anywhere?
pub(crate) fn mentions_var(e: &ScalarExpr, var: &Var) -> bool {
    match e {
        ScalarExpr::Const(_) | ScalarExpr::Param(_) => false,
        ScalarExpr::Attr(v, _) => v == var,
        ScalarExpr::Arith(l, _, r) => mentions_var(l, var) || mentions_var(r, var),
    }
}

/// Extract the equality atoms of a quantifier body usable as existence
/// probe keys — the quantifier counterpart of [`extract_eq_atoms`].
///
/// The body is first normalised to **negation normal form**
/// ([`rewrite::to_nnf`]), so nested negations contribute atoms too:
/// `NOT (o.part # r.front)` normalises to `o.part = r.front` and is
/// extracted. After NNF, only top-level conjuncts of the form
/// `var.attr = key` (or mirrored) qualify, where `key` avoids `var`
/// entirely. Atoms under `OR` / nested quantifiers stay in the
/// residual: the evaluator re-checks the *full* body on every probed
/// tuple, so the atoms only have to be sound as a filter, never
/// complete.
///
/// For `SOME` the probe result is scanned for a body witness; for
/// `ALL` see [`plan_quant_probe`], which derives atoms from the body's
/// *falsifier* where possible and falls back to the bucket-covers-range
/// check otherwise.
///
/// ```
/// use dc_calculus::builder::*;
/// use dc_calculus::joinplan::extract_quant_atoms;
/// use dc_calculus::ScalarExpr;
///
/// // SOME o IN Objects: o.part = r.front AND NOT (o.kind # "vase")
/// let body = eq(attr("o", "part"), attr("r", "front"))
///     .and(not(ne(attr("o", "kind"), cnst("vase"))));
/// let atoms = extract_quant_atoms(&"o".to_string(), &body);
/// assert_eq!(atoms.len(), 2);
/// assert_eq!(atoms[0].attr, "part");
/// // The key side is evaluable in the enclosing scope.
/// assert!(matches!(&atoms[0].key, ScalarExpr::Attr(v, a) if v == "r" && a == "front"));
/// assert_eq!(atoms[1].attr, "kind"); // recovered from under the NOT
/// ```
pub fn extract_quant_atoms(var: &Var, body: &Formula) -> Vec<QuantAtom> {
    extract_quant_atoms_nnf(var, &rewrite::to_nnf(body.clone()))
}

/// Atom extraction over a body already in negation normal form.
fn extract_quant_atoms_nnf(var: &Var, nnf_body: &Formula) -> Vec<QuantAtom> {
    let mut atoms = Vec::new();
    for c in conjuncts(nnf_body) {
        let Formula::Cmp(l, CmpOp::Eq, r) = c else {
            continue;
        };
        let as_var_attr = |e: &ScalarExpr| match e {
            ScalarExpr::Attr(v, a) if v == var => Some(a.clone()),
            _ => None,
        };
        match (as_var_attr(l), as_var_attr(r)) {
            (Some(attr), None) if !mentions_var(r, var) => atoms.push(QuantAtom {
                attr,
                key: r.clone(),
            }),
            (None, Some(attr)) if !mentions_var(l, var) => atoms.push(QuantAtom {
                attr,
                key: l.clone(),
            }),
            _ => {}
        }
    }
    atoms
}

/// How the atoms of a [`QuantPlan`] decide the quantifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantMode {
    /// `SOME`: every witness of the body satisfies the atoms, so every
    /// witness lies inside the probed bucket — scan the bucket for one.
    Witness,
    /// `ALL`: the atoms come from the body's *falsifier* (the NNF of
    /// `NOT body`), so every tuple that falsifies the body lies inside
    /// the probed bucket — scan the bucket for a falsifier; tuples
    /// outside it satisfy the body by construction. This is how
    /// implication-shaped bodies (`NOT p OR q`, falsifier `p AND NOT q`)
    /// become probe-able.
    Falsifier,
    /// `ALL`: the atoms come from the body itself, so any tuple
    /// *outside* the bucket falsifies an equality conjunct and with it
    /// the body — the quantifier can only hold if the bucket covers the
    /// whole range (checked by cardinality before the residual pass).
    Covering,
}

/// An index-probe plan for one quantified subformula: the extracted
/// equality atoms plus the [`QuantMode`] describing what membership in
/// the probed bucket means.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantPlan {
    /// How bucket membership decides the quantifier.
    pub mode: QuantMode,
    /// The usable equality atoms (probed attribute + enclosing-scope
    /// key expression).
    pub atoms: Vec<QuantAtom>,
}

/// Plan an index existence probe for a quantified subformula, or `None`
/// when the body offers no usable equality atoms.
///
/// For `SOME`, atoms are extracted from the NNF of the body
/// ([`QuantMode::Witness`]). For `ALL`, atoms are preferentially
/// extracted from the NNF of the body's **negation** — the falsifier —
/// which covers implication-shaped bodies (`NOT p OR q` has falsifier
/// `p AND NOT q`, so `p`'s equality atoms localise every potential
/// counterexample, [`QuantMode::Falsifier`]); when the falsifier offers
/// no atoms, atoms from the body itself are used with the
/// bucket-covers-range check ([`QuantMode::Covering`]).
pub fn plan_quant_probe(var: &Var, body: &Formula, existential: bool) -> Option<QuantPlan> {
    if existential {
        let atoms = extract_quant_atoms(var, body);
        return (!atoms.is_empty()).then_some(QuantPlan {
            mode: QuantMode::Witness,
            atoms,
        });
    }
    let falsifier = rewrite::to_nnf(body.clone().negate());
    let atoms = extract_quant_atoms_nnf(var, &falsifier);
    if !atoms.is_empty() {
        return Some(QuantPlan {
            mode: QuantMode::Falsifier,
            atoms,
        });
    }
    let atoms = extract_quant_atoms(var, body);
    (!atoms.is_empty()).then_some(QuantPlan {
        mode: QuantMode::Covering,
        atoms,
    })
}

// ---------------------------------------------------------------------
// Decorrelation of correlated quantified ranges (magic-set style)
// ---------------------------------------------------------------------

/// One correlation atom of a correlated filter: the filtered element's
/// `attr` must equal `key`, an expression over the *enclosing* scope
/// (outer variables, parameters, constants mixed with them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrAtom {
    /// The correlated attribute on the filtered range.
    pub attr: String,
    /// The enclosing-scope key expression.
    pub key: ScalarExpr,
}

/// A correlated filter predicate split into its decorrelated and
/// correlated halves — see [`decorrelate_filter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecorrSplit {
    /// The correlation atoms (outer-dependent equality conjuncts).
    pub atoms: Vec<CorrAtom>,
    /// The decorrelated residual: the conjunction of the remaining
    /// conjuncts, which reference only the filtered element variable
    /// (and catalog relations). `Formula::True` when every conjunct is
    /// a correlation atom.
    pub residual: Formula,
}

/// Split the filter predicate of a correlated quantified range into a
/// decorrelated part and correlation atoms.
///
/// The single-variable special case of [`decorrelate_branch`] (the
/// shape produced by rewriting a selector application): given a range
/// `{EACH var IN R: pred}` whose `pred` references outer variables (the
/// common §2.3 selector shape — e.g. `{EACH t IN Ontop: t.base =
/// r.front AND t.top # "dust"}` inside a branch binding `r`), split
/// `pred` into correlation atoms `var.attr = key` and a local residual.
/// Returns `None` under the same conditions as [`decorrelate_branch`].
pub fn decorrelate_filter(var: &Var, pred: &Formula) -> Option<DecorrSplit> {
    let branch = Branch::each(
        var.clone(),
        crate::ast::RangeExpr::Rel(String::new()),
        pred.clone(),
    );
    let split = decorrelate_branch(&branch)?;
    Some(DecorrSplit {
        atoms: split
            .atoms
            .into_iter()
            .map(|a| CorrAtom {
                attr: a.attr,
                key: a.key,
            })
            .collect(),
        residual: split.residual,
    })
}

/// One correlation atom of a correlated multi-binding branch: attribute
/// `attr` of the range bound at `position` must equal `key`, an
/// expression over the *enclosing* scope. The tuple of all atoms forms
/// the **joint key** the decorrelated join is indexed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JointCorrAtom {
    /// Binding position (index into `branch.bindings`) carrying the
    /// correlated attribute.
    pub position: usize,
    /// The correlated attribute on that binding's range.
    pub attr: String,
    /// The enclosing-scope key expression.
    pub key: ScalarExpr,
}

/// A correlated branch predicate split into correlation atoms (spanning
/// any of the branch's bindings) and a local residual — see
/// [`decorrelate_branch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchDecorrSplit {
    /// The correlation atoms; together they form the joint key.
    pub atoms: Vec<JointCorrAtom>,
    /// The decorrelated residual: the conjunction of the remaining
    /// conjuncts, which reference only branch-bound variables (and
    /// catalog relations). This is what the decorrelated *inner join*
    /// is planned from — cross-binding equality atoms (`p.a = q.b`)
    /// land here and become [`plan_branch`] probe steps.
    pub residual: Formula,
}

/// Split the predicate of a correlated **multi-binding** set-former
/// branch into correlation atoms and a decorrelated residual.
///
/// Given a range of the shape `{<target> OF EACH p IN R, q IN S: pred}`
/// whose `pred` references outer variables — e.g. the correlated join
/// view `{<a.worker> OF EACH a IN Assign, s IN Skill: a.worker =
/// s.worker AND a.task = r.task AND s.tool = r.tool}` inside a branch
/// binding `r` — the evaluator wants to materialise the
/// outer-independent *join* once and decide each outer combination by a
/// probe on the **joint key** `(a.task, s.tool)`. This function
/// performs the static half: it normalises `pred` to NNF and partitions
/// its top-level conjuncts into
///
/// * **correlation atoms** `bv.attr = key` where `bv` is any branch
///   binding and `key` avoids *every* branch variable but mentions the
///   enclosing scope (outer variables or parameters) — atoms may span
///   different bindings, producing a joint key over the tuple of
///   correlation columns; and
/// * **decorrelated residual** conjuncts that reference only branch
///   variables (plus catalog relations) — no outer variables, no
///   parameters. Cross-binding equality atoms stay here, so the
///   residual compiles through [`plan_branch`] into an
///   index-nested-loop inner join.
///
/// Returns `None` when there is no correlation atom (nothing to probe),
/// when some conjunct is neither (e.g. a disjunction mixing outer and
/// local references), when binding names shadow each other (reordering
/// would change name resolution), or when the branch target references
/// the enclosing scope (the element tuples would vary per outer
/// combination). Because NNF preserves meaning and the partition is
/// exact (`pred ≡ residual ∧ atoms`), the joint-key bucket over the
/// residual join is *exactly* the correlated range's value for every
/// outer combination — no re-check against the original predicate is
/// needed.
pub fn decorrelate_branch(branch: &Branch) -> Option<BranchDecorrSplit> {
    let branch_vars: Vec<String> = branch.bindings.iter().map(|(v, _)| v.clone()).collect();
    {
        let mut seen = branch_vars.clone();
        seen.sort();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
    }
    // The target must be evaluable from the branch bindings alone —
    // a correlated target would make the element set outer-dependent.
    match &branch.target {
        crate::ast::Target::Var(v) => {
            if !branch_vars.iter().any(|bv| bv == v) {
                return None;
            }
        }
        crate::ast::Target::Tuple(exprs) => {
            if !exprs
                .iter()
                .all(|e| scalar_uses_only(e, &mut branch_vars.clone()))
            {
                return None;
            }
        }
    }
    let nnf = rewrite::to_nnf(branch.predicate.clone());
    let mut atoms = Vec::new();
    let mut residual = Formula::True;
    for c in conjuncts(&nnf) {
        if let Formula::Cmp(l, CmpOp::Eq, r) = c {
            let as_binding_attr = |e: &ScalarExpr| match e {
                // Innermost declaration wins, matching evaluator lookup.
                ScalarExpr::Attr(v, a) => branch_vars
                    .iter()
                    .rposition(|bv| bv == v)
                    .map(|pos| (pos, a.clone())),
                _ => None,
            };
            let key_side = |e: &ScalarExpr| {
                // Free of every branch variable, but not purely local
                // (constants only): a genuine enclosing-scope key.
                !branch_vars.iter().any(|bv| mentions_var(e, bv))
                    && !scalar_uses_only(e, &mut branch_vars.clone())
            };
            let corr = match (as_binding_attr(l), as_binding_attr(r)) {
                (Some((position, attr)), None) if key_side(r) => Some(JointCorrAtom {
                    position,
                    attr,
                    key: r.clone(),
                }),
                (None, Some((position, attr))) if key_side(l) => Some(JointCorrAtom {
                    position,
                    attr,
                    key: l.clone(),
                }),
                _ => None,
            };
            if let Some(atom) = corr {
                atoms.push(atom);
                continue;
            }
        }
        if formula_uses_only(c, &mut branch_vars.clone()) {
            residual = residual.and(c.clone());
            continue;
        }
        // Neither a correlation atom nor local — e.g. a disjunction
        // mixing outer and local references. Not decorrelatable.
        return None;
    }
    if atoms.is_empty() {
        return None;
    }
    Some(BranchDecorrSplit { atoms, residual })
}

/// Does the expression reference only the variables in `local` (no
/// parameters)? Shared scope-analysis for [`decorrelate_branch`] and
/// the evaluator's binding-free range cache.
pub(crate) fn scalar_uses_only(e: &ScalarExpr, local: &mut Vec<String>) -> bool {
    match e {
        ScalarExpr::Const(_) => true,
        ScalarExpr::Param(_) => false,
        ScalarExpr::Attr(v, _) => local.iter().any(|l| l == v),
        ScalarExpr::Arith(l, _, r) => scalar_uses_only(l, local) && scalar_uses_only(r, local),
    }
}

/// Formula counterpart of [`scalar_uses_only`]: quantifier and
/// set-former bindings extend the local scope for their sub-terms.
pub(crate) fn formula_uses_only(f: &Formula, local: &mut Vec<String>) -> bool {
    match f {
        Formula::True | Formula::False => true,
        Formula::Cmp(l, _, r) => scalar_uses_only(l, local) && scalar_uses_only(r, local),
        Formula::And(a, b) | Formula::Or(a, b) => {
            formula_uses_only(a, local) && formula_uses_only(b, local)
        }
        Formula::Not(inner) => formula_uses_only(inner, local),
        Formula::Some(v, range, body) | Formula::All(v, range, body) => {
            if !range_uses_only(range, local) {
                return false;
            }
            local.push(v.clone());
            let ok = formula_uses_only(body, local);
            local.pop();
            ok
        }
        Formula::Member(v, range) => local.iter().any(|l| l == v) && range_uses_only(range, local),
        Formula::TupleIn(exprs, range) => {
            exprs.iter().all(|e| scalar_uses_only(e, local)) && range_uses_only(range, local)
        }
    }
}

/// Range counterpart of [`scalar_uses_only`].
pub(crate) fn range_uses_only(r: &crate::ast::RangeExpr, local: &mut Vec<String>) -> bool {
    use crate::ast::{RangeExpr, Target};
    match r {
        RangeExpr::Rel(_) => true,
        RangeExpr::Selected { base, args, .. } => {
            range_uses_only(base, local) && args.iter().all(|a| scalar_uses_only(a, local))
        }
        RangeExpr::Constructed {
            base,
            args,
            scalar_args,
            ..
        } => {
            range_uses_only(base, local)
                && args.iter().all(|a| range_uses_only(a, local))
                && scalar_args.iter().all(|s| scalar_uses_only(s, local))
        }
        RangeExpr::SetFormer(sf) => sf.branches.iter().all(|b| {
            let mark = local.len();
            for (v, range) in &b.bindings {
                if !range_uses_only(range, local) {
                    local.truncate(mark);
                    return false;
                }
                local.push(v.clone());
            }
            let ok = formula_uses_only(&b.predicate, local)
                && match &b.target {
                    Target::Var(v) => local.iter().any(|l| l == v),
                    Target::Tuple(exprs) => exprs.iter().all(|e| scalar_uses_only(e, local)),
                };
            local.truncate(mark);
            ok
        }),
    }
}

/// System-R estimate of the number of combinations a branch emits:
/// the cross-product cardinality reduced by `1/distinct` for every
/// equality conjunct the branch carries (constant keys use the probed
/// column's distinct count; cross-binding join keys use the larger
/// side's, the classic equi-join estimate). Symmetric binding–binding
/// atom pairs emitted by [`extract_eq_atoms`] are counted once.
///
/// Used by the decorrelation profitability gate: materialising a
/// decorrelated inner join only pays off when the local equality atoms
/// keep the join near-linear in its inputs, so a branch whose estimate
/// blows past its input cardinalities stays on the per-combination
/// scan.
pub fn estimate_branch_rows(branch: &Branch, schemas: &[&Schema], stats: &[RelationStats]) -> f64 {
    debug_assert_eq!(schemas.len(), branch.bindings.len());
    debug_assert_eq!(stats.len(), branch.bindings.len());
    let mut est: f64 = stats.iter().map(|s| s.cardinality as f64).product();
    for atom in extract_eq_atoms(branch) {
        match &atom.source {
            KeySource::Free(_) => {
                if let Ok(pos) = schemas[atom.position].position(&atom.attr) {
                    est *= stats[atom.position].eq_selectivity(pos);
                }
            }
            KeySource::Binding { position, attr } => {
                // Each conjunct appears in both directions; count the
                // canonical one.
                if atom.position > *position {
                    continue;
                }
                let (Ok(lp), Ok(rp)) = (
                    schemas[atom.position].position(&atom.attr),
                    schemas[*position].position(attr),
                ) else {
                    continue;
                };
                let sel = stats[atom.position]
                    .eq_selectivity(lp)
                    .min(stats[*position].eq_selectivity(rp));
                est *= sel;
            }
        }
    }
    est
}

/// Order the branch's binding positions into an index-nested-loop plan.
///
/// Greedy System-R-style ordering: repeatedly pick the unbound position
/// with the lowest estimated enumeration cost, where a position whose
/// equality atoms are all *available* (sources free, or bound by
/// earlier steps) costs `cardinality × Π 1/distinct(attr)` and an
/// unsupported position costs its full cardinality. Ties break toward
/// declaration order, so plans are deterministic and the no-atom case
/// degenerates to the reference scan order.
///
/// ```
/// use dc_calculus::ast::Branch;
/// use dc_calculus::builder::*;
/// use dc_calculus::joinplan::{plan_branch, Access};
/// use dc_index::RelationStats;
/// use dc_value::{Domain, Schema};
///
/// // The paper's §2.3 join: <f.front, b.back> OF EACH f, b IN Infront:
/// //   f.back = b.front
/// let branch = Branch::projecting(
///     vec![attr("f", "front"), attr("b", "back")],
///     vec![("f".into(), rel("Infront")), ("b".into(), rel("Infront"))],
///     eq(attr("f", "back"), attr("b", "front")),
/// );
/// let schema = Schema::of(&[("front", Domain::Str), ("back", Domain::Str)]);
/// let stats = RelationStats { cardinality: 100, distinct: vec![50, 50] };
/// let plan = plan_branch(&branch, &[&schema, &schema], &[stats.clone(), stats]);
/// // One range is scanned, the other probed through a hash index on
/// // the equality column — an index-nested-loop join, not a cross
/// // product.
/// assert!(matches!(plan.steps[0].access, Access::Scan));
/// assert!(matches!(plan.steps[1].access, Access::Probe(_)));
/// ```
pub fn plan_branch(branch: &Branch, schemas: &[&Schema], stats: &[RelationStats]) -> BranchPlan {
    plan_branch_traced(branch, schemas, stats).0
}

/// The System-R numbers behind one [`plan_branch_traced`] ordering
/// decision, captured at the moment the position was picked.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRationale {
    /// The picked binding position.
    pub position: usize,
    /// Range cardinality from statistics.
    pub cardinality: usize,
    /// Product of usable equality-atom selectivities (1.0 for scans).
    pub selectivity: f64,
    /// `cardinality × selectivity` — the ordering key that won.
    pub estimate: f64,
}

/// [`plan_branch`] plus the per-step ordering rationale, in step
/// order. The rationale is what `EXPLAIN` and the planner trace
/// report; `plan_branch` discards it.
pub fn plan_branch_traced(
    branch: &Branch,
    schemas: &[&Schema],
    stats: &[RelationStats],
) -> (BranchPlan, Vec<StepRationale>) {
    let n = branch.bindings.len();
    debug_assert_eq!(schemas.len(), n);
    debug_assert_eq!(stats.len(), n);
    let atoms = extract_eq_atoms(branch);
    if atoms.is_empty() {
        let rationale = (0..n)
            .map(|p| StepRationale {
                position: p,
                cardinality: stats[p].cardinality,
                selectivity: 1.0,
                estimate: stats[p].cardinality as f64,
            })
            .collect();
        return (BranchPlan::all_scans(n), rationale);
    }
    let mut bound = vec![false; n];
    let mut steps = Vec::with_capacity(n);
    let mut rationale = Vec::with_capacity(n);
    while steps.len() < n {
        let mut best: Option<(f64, usize, Vec<EqAtom>)> = None;
        for p in 0..n {
            if bound[p] {
                continue;
            }
            let usable: Vec<EqAtom> = atoms
                .iter()
                .filter(|a| {
                    a.position == p
                        && match &a.source {
                            KeySource::Free(_) => true,
                            KeySource::Binding { position, .. } => bound[*position],
                        }
                })
                .cloned()
                .collect();
            let mut est = stats[p].cardinality as f64;
            for a in &usable {
                if let Ok(pos) = schemas[p].position(&a.attr) {
                    est *= stats[p].eq_selectivity(pos);
                }
            }
            // Prefer probes over scans at equal estimates.
            let better = match &best {
                None => true,
                Some((best_est, _, best_atoms)) => {
                    est < *best_est
                        || (est == *best_est && best_atoms.is_empty() && !usable.is_empty())
                }
            };
            if better {
                best = Some((est, p, usable));
            }
        }
        // `steps.len() < n` guarantees at least one unbound position,
        // so the inner loop always proposes a candidate. If the
        // invariant were ever violated, fall back to scanning the
        // remaining positions rather than panicking in the planner.
        let Some((est, p, usable)) = best else {
            debug_assert!(false, "an unbound position always exists");
            for (p, b) in bound.iter().enumerate() {
                if !b {
                    steps.push(PlanStep {
                        position: p,
                        access: Access::Scan,
                    });
                    rationale.push(StepRationale {
                        position: p,
                        cardinality: stats[p].cardinality,
                        selectivity: 1.0,
                        estimate: stats[p].cardinality as f64,
                    });
                }
            }
            break;
        };
        bound[p] = true;
        let cardinality = stats[p].cardinality;
        rationale.push(StepRationale {
            position: p,
            cardinality,
            selectivity: if cardinality == 0 {
                1.0
            } else {
                est / cardinality as f64
            },
            estimate: est,
        });
        let access = if usable.is_empty() {
            Access::Scan
        } else {
            Access::Probe(usable)
        };
        steps.push(PlanStep {
            position: p,
            access,
        });
    }
    (BranchPlan { steps }, rationale)
}

/// Definition lookup for [`base_relations`]: resolves the *bodies*
/// hidden behind names in a range expression — selector predicates and
/// constructor bodies — so the read-set analysis can chase references
/// transitively. Returning `None` for a name marks the profile
/// [`ReadProfile::unresolved`] (the caller must then assume the query
/// reads everything).
pub trait DefLookup {
    /// The predicate body of a named selector, if known.
    fn selector_body(&self, name: &str) -> Option<&Formula>;
    /// The set-former body and formal relation parameters
    /// (base first, then relation args) of a named constructor, if
    /// known.
    fn constructor_parts(&self, name: &str) -> Option<(&SetFormer, Vec<Name>)>;
}

/// Read-set / dependency profile of a query: which base (catalog)
/// relations its result depends on, and which of those occurrences are
/// *unsafe* for delta-monotone maintenance.
///
/// A relation occurrence is **safe** when it appears only as a plain
/// `EACH v IN R` binding range (possibly reached through a constructor
/// application whose base/args are themselves plain relation names):
/// inserting tuples into `R` can only *add* bindings, so the query
/// result grows monotonically and a semi-naive warm start from the
/// previous result is sound. Every other occurrence — inside a
/// predicate (`MEMBER`, `SOME`/`ALL` ranges, negation), a selector
/// body, a nested set former used as a range, or a constructor
/// application with a computed base — lands in
/// [`ReadProfile::unsafe_reads`], because an insert there can remove
/// result tuples (non-monotone) or change intermediate values in ways
/// delta rules do not cover.
///
/// Serving layers use the profile two ways: commits touching relations
/// disjoint from [`ReadProfile::reads`] cannot change the result at
/// all (O(1) filter), and commits touching only safe reads with
/// insert-only ops qualify for warm-start maintenance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadProfile {
    /// Every base relation the query may read, safe or not.
    pub reads: BTreeSet<Name>,
    /// Base relations with at least one non-delta-monotone occurrence.
    pub unsafe_reads: BTreeSet<Name>,
    /// True when a selector or constructor definition could not be
    /// resolved: the profile is then a lower bound and the caller must
    /// treat the query as reading (and unsafely depending on)
    /// everything.
    pub unresolved: bool,
}

impl ReadProfile {
    /// True when a commit touching exactly `touched` cannot affect the
    /// query result. Unresolved profiles never qualify.
    pub fn disjoint_from<'a, I: IntoIterator<Item = &'a Name>>(&self, touched: I) -> bool {
        !self.unresolved && touched.into_iter().all(|t| !self.reads.contains(t))
    }

    /// True when every touched relation occurs only in safe (plain
    /// binding-range) positions, so insert-only deltas are
    /// delta-monotone. Unresolved profiles never qualify.
    pub fn monotone_in<'a, I: IntoIterator<Item = &'a Name>>(&self, touched: I) -> bool {
        !self.unresolved && touched.into_iter().all(|t| !self.unsafe_reads.contains(t))
    }
}

struct ProfileWalk<'a> {
    defs: &'a dyn DefLookup,
    profile: ReadProfile,
    /// Constructor names on the current expansion path (cycle guard:
    /// recursive constructors reference themselves).
    ctor_stack: Vec<Name>,
    /// Selector names already expanded (their bodies are
    /// context-independent, so once is enough).
    selectors_done: BTreeSet<Name>,
}

/// Compute the [`ReadProfile`] of a query expression, resolving
/// selector and constructor definitions through `defs`.
///
/// Constructor formals are tracked by *provenance*: an application
/// `R{tc(S)}` maps the constructor's formals to `R` and `S`, so a
/// plain `EACH v IN formal` binding inside the body counts as a safe
/// read of the actual relation. A formal bound to anything other than
/// a plain relation name propagates its whole read set as unsafe.
pub fn base_relations(range: &RangeExpr, defs: &dyn DefLookup) -> ReadProfile {
    let mut walk = ProfileWalk {
        defs,
        profile: ReadProfile::default(),
        ctor_stack: Vec::new(),
        selectors_done: BTreeSet::new(),
    };
    walk.range(range, true, &BTreeMap::new());
    walk.profile
}

impl ProfileWalk<'_> {
    /// Record a read of base relation `name`; `safe` marks a plain
    /// binding-range occurrence.
    fn read(&mut self, name: &Name, safe: bool) {
        self.profile.reads.insert(name.clone());
        if !safe {
            self.profile.unsafe_reads.insert(name.clone());
        }
    }

    /// Walk a range expression. `binding` is true when the range is
    /// consumed as an `EACH v IN …` binding range (the only
    /// delta-monotone position); `prov` maps enclosing constructor
    /// formals to base-catalog names (`None` provenance = the formal
    /// was bound to a computed range, already accounted for at the
    /// application site).
    fn range(&mut self, r: &RangeExpr, binding: bool, prov: &BTreeMap<Name, Option<Name>>) {
        match r {
            RangeExpr::Rel(n) => match prov.get(n) {
                Some(Some(actual)) => {
                    let actual = actual.clone();
                    self.read(&actual, binding);
                }
                // Formal bound to a computed range: its reads were
                // recorded (as unsafe) at the application site.
                Some(None) => {}
                None => {
                    let n = n.clone();
                    self.read(&n, binding);
                }
            },
            RangeExpr::Selected {
                base,
                selector,
                args,
            } => {
                // Selection filters the base: still monotone in the
                // base itself, but everything the selector body reads
                // is a filter input and therefore unsafe.
                self.range(base, binding, prov);
                for a in args {
                    self.scalar(a, prov);
                }
                self.selector(selector);
            }
            RangeExpr::Constructed {
                base,
                constructor,
                args,
                ..
            } => self.application(base, constructor, args, prov),
            RangeExpr::SetFormer(sf) => {
                // A nested set former used as a range re-derives its
                // tuples per evaluation; treat its binding ranges as
                // binding positions only at the *top level* of the
                // query — nested-in-predicate set formers arrive here
                // with `binding == false` and poison everything.
                self.set_former(sf, binding, prov);
            }
        }
    }

    fn set_former(&mut self, sf: &SetFormer, binding: bool, prov: &BTreeMap<Name, Option<Name>>) {
        for b in &sf.branches {
            for (_, range) in &b.bindings {
                self.range(range, binding, prov);
            }
            self.formula(&b.predicate, prov);
            if let Target::Tuple(exprs) = &b.target {
                for e in exprs {
                    self.scalar(e, prov);
                }
            }
        }
    }

    /// A constructor application `base{c(args…)}`: plain-`Rel`
    /// base/args forward provenance into the body; computed base/args
    /// are walked here with every read marked unsafe (the fixpoint
    /// re-evaluates them whenever their inputs change, outside the
    /// delta rules).
    fn application(
        &mut self,
        base: &RangeExpr,
        constructor: &Name,
        args: &[RangeExpr],
        prov: &BTreeMap<Name, Option<Name>>,
    ) {
        let mut actuals: Vec<Option<Name>> = Vec::with_capacity(args.len() + 1);
        for actual in std::iter::once(base).chain(args.iter()) {
            match actual {
                RangeExpr::Rel(n) => match prov.get(n) {
                    Some(slot) => actuals.push(slot.clone()),
                    None => {
                        let n = n.clone();
                        // The application *scans* the actual relation
                        // as the seed of the fixpoint — a binding-range
                        // read, delta-monotone.
                        self.read(&n, true);
                        actuals.push(Some(n));
                    }
                },
                computed => {
                    // Computed actual: record its reads as unsafe and
                    // pass `None` provenance into the body.
                    self.range(computed, false, prov);
                    actuals.push(None);
                }
            }
        }
        if self.ctor_stack.contains(constructor) {
            return; // recursive self-reference: already on the path
        }
        let Some((body, formals)) = self.defs.constructor_parts(constructor) else {
            self.profile.unresolved = true;
            return;
        };
        let body = body.clone();
        if formals.len() != actuals.len() {
            // Arity mismatch is a type error elsewhere; profile
            // conservatively.
            self.profile.unresolved = true;
            return;
        }
        let child: BTreeMap<Name, Option<Name>> = formals.into_iter().zip(actuals).collect();
        self.ctor_stack.push(constructor.clone());
        self.set_former(&body, true, &child);
        self.ctor_stack.pop();
    }

    fn selector(&mut self, name: &Name) {
        if !self.selectors_done.insert(name.clone()) {
            return;
        }
        let Some(body) = self.defs.selector_body(name) else {
            self.profile.unresolved = true;
            return;
        };
        let body = body.clone();
        // Selector bodies see only the base catalog — no formal
        // provenance — and every read is a filter input.
        self.formula(&body, &BTreeMap::new());
    }

    fn formula(&mut self, f: &Formula, prov: &BTreeMap<Name, Option<Name>>) {
        match f {
            Formula::True | Formula::False => {}
            Formula::Cmp(a, _, b) => {
                self.scalar(a, prov);
                self.scalar(b, prov);
            }
            Formula::And(a, b) | Formula::Or(a, b) => {
                self.formula(a, prov);
                self.formula(b, prov);
            }
            Formula::Not(inner) => self.formula(inner, prov),
            Formula::Some(_, r, body) | Formula::All(_, r, body) => {
                self.range(r, false, prov);
                self.formula(body, prov);
            }
            Formula::Member(_, r) | Formula::TupleIn(_, r) => self.range(r, false, prov),
        }
    }

    fn scalar(&mut self, e: &ScalarExpr, _prov: &BTreeMap<Name, Option<Name>>) {
        // Scalar expressions reference attributes, constants, and
        // parameters — never relations — so nothing to record. Kept as
        // a method so future scalar subqueries have one place to land.
        let _ = e;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use dc_relation::Relation;
    use dc_value::{tuple, Domain, Schema};

    fn edge_schema() -> Schema {
        Schema::of(&[("front", Domain::Str), ("back", Domain::Str)])
    }

    /// The paper's two-variable join branch:
    /// `<f.front, b.back> OF EACH f, b IN Infront: f.back = b.front`.
    fn join_branch() -> Branch {
        Branch::projecting(
            vec![attr("f", "front"), attr("b", "back")],
            vec![("f".into(), rel("Infront")), ("b".into(), rel("Infront"))],
            eq(attr("f", "back"), attr("b", "front")),
        )
    }

    #[test]
    fn extracts_symmetric_binding_atoms() {
        let atoms = extract_eq_atoms(&join_branch());
        assert_eq!(atoms.len(), 2);
        assert_eq!(
            atoms[0],
            EqAtom {
                position: 0,
                attr: "back".into(),
                source: KeySource::Binding {
                    position: 1,
                    attr: "front".into()
                },
            }
        );
        assert_eq!(
            atoms[1],
            EqAtom {
                position: 1,
                attr: "front".into(),
                source: KeySource::Binding {
                    position: 0,
                    attr: "back".into()
                },
            }
        );
    }

    #[test]
    fn extracts_constant_and_param_atoms() {
        let b = Branch::each(
            "r",
            rel("Infront"),
            eq(attr("r", "front"), cnst("vase")).and(eq(param("Obj"), attr("r", "back"))),
        );
        let atoms = extract_eq_atoms(&b);
        assert_eq!(atoms.len(), 2);
        assert!(matches!(
            &atoms[0].source,
            KeySource::Free(ScalarExpr::Const(_))
        ));
        assert_eq!(atoms[1].attr, "back");
        assert!(matches!(&atoms[1].source, KeySource::Free(ScalarExpr::Param(p)) if p == "Obj"));
    }

    #[test]
    fn outer_variable_is_a_free_source() {
        // `o` is not bound by this branch — its attribute is a free key.
        let b = Branch::each(
            "r",
            rel("Infront"),
            eq(attr("r", "front"), attr("o", "part")),
        );
        let atoms = extract_eq_atoms(&b);
        assert_eq!(atoms.len(), 1);
        assert!(matches!(&atoms[0].source, KeySource::Free(ScalarExpr::Attr(v, _)) if v == "o"));
    }

    #[test]
    fn non_equality_and_disjunctive_atoms_ignored() {
        // `<`, `OR`, `NOT`, and quantified equalities must not produce
        // probe atoms — they stay residual.
        let b = Branch::each(
            "r",
            rel("Infront"),
            lt(attr("r", "front"), cnst("z"))
                .and(eq(attr("r", "front"), cnst("a")).or(eq(attr("r", "back"), cnst("b"))))
                .and(not(eq(attr("r", "front"), cnst("q"))))
                .and(some(
                    "x",
                    rel("Infront"),
                    eq(attr("x", "front"), attr("r", "back")),
                )),
        );
        assert!(extract_eq_atoms(&b).is_empty());
    }

    #[test]
    fn same_position_equality_is_not_a_join_key() {
        let b = Branch::each(
            "r",
            rel("Infront"),
            eq(attr("r", "front"), attr("r", "back")),
        );
        assert!(extract_eq_atoms(&b).is_empty());
    }

    #[test]
    fn shadowed_binding_names_disable_extraction() {
        let b = Branch {
            target: crate::ast::Target::Var("x".into()),
            bindings: vec![("x".into(), rel("Infront")), ("x".into(), rel("Infront"))],
            predicate: eq(attr("x", "front"), cnst("a")),
        };
        assert!(extract_eq_atoms(&b).is_empty());
        let plan = plan_branch(
            &b,
            &[&edge_schema(), &edge_schema()],
            &[
                RelationStats {
                    cardinality: 1,
                    distinct: vec![1, 1],
                },
                RelationStats {
                    cardinality: 1,
                    distinct: vec![1, 1],
                },
            ],
        );
        assert_eq!(plan, BranchPlan::all_scans(2));
    }

    #[test]
    fn join_plan_scans_once_probes_rest() {
        let rel_small =
            Relation::from_tuples(edge_schema(), vec![tuple!["a", "b"], tuple!["b", "c"]]).unwrap();
        let stats = RelationStats::collect(&rel_small);
        let schema = edge_schema();
        let plan = plan_branch(&join_branch(), &[&schema, &schema], &[stats.clone(), stats]);
        assert_eq!(plan.steps.len(), 2);
        assert!(matches!(plan.steps[0].access, Access::Scan));
        let Access::Probe(atoms) = &plan.steps[1].access else {
            panic!("second step must probe, got {plan:?}");
        };
        assert_eq!(atoms.len(), 1);
    }

    #[test]
    fn constant_probe_ordered_before_unselective_scan() {
        // `EACH big IN Big, EACH sel IN Sel: sel.front = "x" AND
        //  big.back = sel.back` — the planner should start with the
        // constant-keyed probe on Sel, then probe Big on the join key.
        let b = Branch::projecting(
            vec![attr("big", "front")],
            vec![("big".into(), rel("Big")), ("sel".into(), rel("Sel"))],
            eq(attr("sel", "front"), cnst("x")).and(eq(attr("big", "back"), attr("sel", "back"))),
        );
        let big = Relation::from_tuples(
            edge_schema(),
            (0..50).map(|i| tuple![format!("f{i}"), format!("b{i}")]),
        )
        .unwrap();
        let sel = Relation::from_tuples(
            edge_schema(),
            (0..10).map(|i| tuple![format!("s{i}"), format!("b{i}")]),
        )
        .unwrap();
        let schema = edge_schema();
        let plan = plan_branch(
            &b,
            &[&schema, &schema],
            &[RelationStats::collect(&big), RelationStats::collect(&sel)],
        );
        assert_eq!(plan.steps[0].position, 1, "{plan:?}");
        assert!(matches!(plan.steps[0].access, Access::Probe(_)));
        assert_eq!(plan.steps[1].position, 0);
        assert!(matches!(plan.steps[1].access, Access::Probe(_)));
    }

    #[test]
    fn quant_atoms_extracted_from_conjunction() {
        // SOME o IN Objects: o.part = r.front AND o.kind = "vase"
        let body =
            eq(attr("o", "part"), attr("r", "front")).and(eq(cnst("vase"), attr("o", "kind")));
        let atoms = extract_quant_atoms(&"o".to_string(), &body);
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[0].attr, "part");
        assert!(matches!(&atoms[0].key, ScalarExpr::Attr(v, a) if v == "r" && a == "front"));
        assert_eq!(atoms[1].attr, "kind");
        assert!(matches!(&atoms[1].key, ScalarExpr::Const(_)));
    }

    #[test]
    fn quant_atoms_skip_var_on_both_sides_and_non_conjuncts() {
        // o.a = o.b is not probe-able; disjunctive/negated/quantified
        // equalities stay residual.
        let body = eq(attr("o", "a"), attr("o", "b"))
            .and(eq(attr("o", "a"), cnst("x")).or(eq(attr("o", "b"), cnst("y"))))
            .and(not(eq(attr("o", "a"), cnst("z"))))
            .and(some("i", rel("R"), eq(attr("i", "k"), attr("o", "a"))))
            .and(lt(attr("o", "a"), cnst("w")));
        assert!(extract_quant_atoms(&"o".to_string(), &body).is_empty());
        // Arithmetic over the quantified variable is not a key either.
        let arith = eq(add(attr("o", "n"), cnst(1i64)), attr("r", "n"));
        assert!(extract_quant_atoms(&"o".to_string(), &arith).is_empty());
        // …but arithmetic over outer variables is.
        let outer = eq(attr("o", "n"), add(attr("r", "n"), cnst(1i64)));
        assert_eq!(extract_quant_atoms(&"o".to_string(), &outer).len(), 1);
    }

    #[test]
    fn quant_atoms_recovered_through_nnf() {
        // NOT (o.part # r.front) normalises to o.part = r.front.
        let body = not(ne(attr("o", "part"), attr("r", "front")));
        let atoms = extract_quant_atoms(&"o".to_string(), &body);
        assert_eq!(atoms.len(), 1);
        assert_eq!(atoms[0].attr, "part");
        // De Morgan: NOT (o.a # "x" OR o.b # "y") ⇒ o.a = "x" AND o.b = "y".
        let body = not(ne(attr("o", "a"), cnst("x")).or(ne(attr("o", "b"), cnst("y"))));
        let atoms = extract_quant_atoms(&"o".to_string(), &body);
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[0].attr, "a");
        assert_eq!(atoms[1].attr, "b");
    }

    #[test]
    fn quant_plan_modes() {
        let var = "o".to_string();
        // SOME: witness atoms from the body.
        let body = eq(attr("o", "part"), attr("r", "front"));
        let plan = plan_quant_probe(&var, &body, true).unwrap();
        assert_eq!(plan.mode, QuantMode::Witness);
        assert_eq!(plan.atoms.len(), 1);
        // ALL over an implication NOT p OR q: falsifier p AND NOT q
        // yields p's equality atoms (NOT q contributes none here).
        let imp = not(eq(attr("o", "base"), attr("r", "front"))).or(lt(attr("o", "n"), cnst(3i64)));
        let plan = plan_quant_probe(&var, &imp, false).unwrap();
        assert_eq!(plan.mode, QuantMode::Falsifier);
        assert_eq!(plan.atoms.len(), 1);
        assert_eq!(plan.atoms[0].attr, "base");
        // ALL over a bare equality: no falsifier atoms (the falsifier is
        // an inequality), covering check instead.
        let conj = eq(attr("o", "part"), attr("r", "front"));
        let plan = plan_quant_probe(&var, &conj, false).unwrap();
        assert_eq!(plan.mode, QuantMode::Covering);
        // ALL with nothing extractable on either side.
        assert!(plan_quant_probe(&var, &lt(attr("o", "n"), cnst(3i64)), false).is_none());
    }

    #[test]
    fn all_implication_falsifier_collects_both_sides() {
        // ALL o (NOT (o.base = r.front) OR NOT (o.top = r.back)):
        // falsifier = o.base = r.front AND o.top = r.back — a
        // two-column probe key localising every counterexample.
        let var = "o".to_string();
        let imp = not(eq(attr("o", "base"), attr("r", "front")))
            .or(not(eq(attr("o", "top"), attr("r", "back"))));
        let plan = plan_quant_probe(&var, &imp, false).unwrap();
        assert_eq!(plan.mode, QuantMode::Falsifier);
        assert_eq!(plan.atoms.len(), 2, "{:?}", plan.atoms);
        assert_eq!(plan.atoms[0].attr, "base");
        assert_eq!(plan.atoms[1].attr, "top");
    }

    #[test]
    fn decorrelate_splits_correlation_atoms_from_local_residual() {
        // {EACH t IN Ontop: t.base = r.front AND t.top # "dust"}
        let pred =
            eq(attr("t", "base"), attr("r", "front")).and(ne(attr("t", "top"), cnst("dust")));
        let split = decorrelate_filter(&"t".to_string(), &pred).unwrap();
        assert_eq!(split.atoms.len(), 1);
        assert_eq!(split.atoms[0].attr, "base");
        assert!(matches!(&split.atoms[0].key, ScalarExpr::Attr(v, a) if v == "r" && a == "front"));
        assert_eq!(split.residual, ne(attr("t", "top"), cnst("dust")));
    }

    #[test]
    fn decorrelate_param_keys_and_local_quantifiers() {
        // Parameter keys correlate (resolved per combination); local
        // quantifiers over catalog relations stay in the residual.
        let pred = eq(attr("t", "base"), param("Obj")).and(some(
            "q",
            rel("Objects"),
            eq(attr("q", "part"), attr("t", "top")),
        ));
        let split = decorrelate_filter(&"t".to_string(), &pred).unwrap();
        assert_eq!(split.atoms.len(), 1);
        assert!(matches!(&split.atoms[0].key, ScalarExpr::Param(p) if p == "Obj"));
        assert!(matches!(split.residual, Formula::Some(..)));
    }

    #[test]
    fn decorrelate_refusals() {
        let t = "t".to_string();
        // No correlation atom at all: nothing to probe.
        assert!(decorrelate_filter(&t, &ne(attr("t", "top"), cnst("x"))).is_none());
        // Constant-key equalities are local, not correlation atoms.
        assert!(decorrelate_filter(&t, &eq(attr("t", "base"), cnst("x"))).is_none());
        // A conjunct mixing outer and local references under OR cannot
        // be split.
        let mixed = eq(attr("t", "base"), attr("r", "front"))
            .and(ne(attr("t", "top"), cnst("x")).or(eq(attr("t", "top"), attr("r", "back"))));
        assert!(decorrelate_filter(&t, &mixed).is_none());
        // Keys mentioning the element variable are not correlation atoms.
        let self_key = eq(attr("t", "base"), add(attr("r", "n"), attr("t", "n")));
        assert!(decorrelate_filter(&t, &self_key).is_none());
        // Non-equality outer references cannot be split either.
        let ineq =
            eq(attr("t", "base"), attr("r", "front")).and(lt(attr("t", "top"), attr("r", "back")));
        assert!(decorrelate_filter(&t, &ineq).is_none());
    }

    #[test]
    fn decorrelate_branch_joint_key_spans_bindings() {
        // {<a.worker> OF EACH a IN Assign, s IN Skill:
        //    a.worker = s.worker AND a.task = r.task AND s.tool = r.tool}
        // — correlation atoms on *both* bindings form the joint key
        // (a.task, s.tool); the cross-binding equality stays in the
        // residual as the inner-join atom.
        let b = Branch::projecting(
            vec![attr("a", "worker")],
            vec![("a".into(), rel("Assign")), ("s".into(), rel("Skill"))],
            eq(attr("a", "worker"), attr("s", "worker"))
                .and(eq(attr("a", "task"), attr("r", "task")))
                .and(eq(attr("s", "tool"), attr("r", "tool"))),
        );
        let split = decorrelate_branch(&b).unwrap();
        assert_eq!(split.atoms.len(), 2, "{:?}", split.atoms);
        assert_eq!(split.atoms[0].position, 0);
        assert_eq!(split.atoms[0].attr, "task");
        assert_eq!(split.atoms[1].position, 1);
        assert_eq!(split.atoms[1].attr, "tool");
        assert_eq!(split.residual, eq(attr("a", "worker"), attr("s", "worker")));
    }

    #[test]
    fn decorrelate_branch_refusals() {
        // Correlated target: the element tuple would vary per outer
        // combination.
        let corr_target = Branch::projecting(
            vec![attr("a", "worker"), attr("r", "task")],
            vec![("a".into(), rel("Assign"))],
            eq(attr("a", "task"), attr("r", "task")),
        );
        assert!(decorrelate_branch(&corr_target).is_none());
        // Target variable not bound by the branch.
        let outer_target = Branch {
            target: crate::ast::Target::Var("r".into()),
            bindings: vec![("a".into(), rel("Assign"))],
            predicate: eq(attr("a", "task"), attr("r", "task")),
        };
        assert!(decorrelate_branch(&outer_target).is_none());
        // Shadowed binding names.
        let shadowed = Branch {
            target: crate::ast::Target::Var("a".into()),
            bindings: vec![("a".into(), rel("Assign")), ("a".into(), rel("Skill"))],
            predicate: eq(attr("a", "task"), attr("r", "task")),
        };
        assert!(decorrelate_branch(&shadowed).is_none());
        // A key mixing outer and branch variables is not a correlation
        // atom, and not local either.
        let mixed_key = Branch::projecting(
            vec![attr("a", "worker")],
            vec![("a".into(), rel("Assign")), ("s".into(), rel("Skill"))],
            eq(attr("a", "task"), add(attr("r", "task"), attr("s", "tool"))),
        );
        assert!(decorrelate_branch(&mixed_key).is_none());
    }

    #[test]
    fn estimate_branch_rows_reflects_join_atoms() {
        let schema = edge_schema();
        let stats = [
            RelationStats {
                cardinality: 100,
                distinct: vec![50, 20],
            },
            RelationStats {
                cardinality: 60,
                distinct: vec![30, 10],
            },
        ];
        // Cross product, no atoms.
        let cross = Branch::projecting(
            vec![attr("a", "front")],
            vec![("a".into(), rel("R")), ("b".into(), rel("S"))],
            tru(),
        );
        let est = estimate_branch_rows(&cross, &[&schema, &schema], &stats);
        assert_eq!(est, 6000.0);
        // One join atom: reduced by 1/max(distinct) = 1/50, counted
        // once despite the symmetric atom pair.
        let join = Branch::projecting(
            vec![attr("a", "front")],
            vec![("a".into(), rel("R")), ("b".into(), rel("S"))],
            eq(attr("a", "front"), attr("b", "front")),
        );
        let est = estimate_branch_rows(&join, &[&schema, &schema], &stats);
        assert_eq!(est, 6000.0 / 50.0);
        // An extra constant atom narrows further.
        let join_const = Branch::projecting(
            vec![attr("a", "front")],
            vec![("a".into(), rel("R")), ("b".into(), rel("S"))],
            eq(attr("a", "front"), attr("b", "front")).and(eq(attr("b", "back"), cnst("x"))),
        );
        let est = estimate_branch_rows(&join_const, &[&schema, &schema], &stats);
        assert_eq!(est, 6000.0 / 50.0 / 10.0);
    }

    #[test]
    fn decorrelate_applies_nnf_first() {
        // NOT (t.base # r.front OR t.top = "dust") ⇒
        //   t.base = r.front AND t.top # "dust".
        let pred =
            not(ne(attr("t", "base"), attr("r", "front")).or(eq(attr("t", "top"), cnst("dust"))));
        let split = decorrelate_filter(&"t".to_string(), &pred).unwrap();
        assert_eq!(split.atoms.len(), 1);
        assert_eq!(split.residual, ne(attr("t", "top"), cnst("dust")));
    }

    #[test]
    fn no_atoms_degenerates_to_declaration_order() {
        let b = Branch::projecting(
            vec![attr("a", "front")],
            vec![("a".into(), rel("R")), ("b".into(), rel("S"))],
            tru(),
        );
        let schema = edge_schema();
        let plan = plan_branch(
            &b,
            &[&schema, &schema],
            &[
                RelationStats {
                    cardinality: 9,
                    distinct: vec![3, 3],
                },
                RelationStats {
                    cardinality: 1,
                    distinct: vec![1, 1],
                },
            ],
        );
        assert_eq!(plan, BranchPlan::all_scans(2));
        assert!(!plan.has_probe());
    }

    /// Definition store for read-profile tests: the `ahead` transitive
    /// closure constructor over formal `Rel`, plus a selector whose
    /// body quantifies over `Hidden`.
    struct TestDefs;

    impl DefLookup for TestDefs {
        fn selector_body(&self, name: &str) -> Option<&Formula> {
            use std::sync::OnceLock;
            static BODY: OnceLock<Formula> = OnceLock::new();
            (name == "shadowed").then(|| {
                BODY.get_or_init(|| {
                    some(
                        "h",
                        rel("Hidden"),
                        eq(attr("h", "front"), attr("r", "front")),
                    )
                })
            })
        }

        fn constructor_parts(&self, name: &str) -> Option<(&SetFormer, Vec<Name>)> {
            use std::sync::OnceLock;
            static BODY: OnceLock<SetFormer> = OnceLock::new();
            (name == "ahead").then(|| {
                let body = BODY.get_or_init(|| SetFormer {
                    branches: vec![
                        Branch::each("r", rel("Rel"), tru()),
                        Branch::projecting(
                            vec![attr("f", "front"), attr("b", "back")],
                            vec![
                                ("f".into(), rel("Rel")),
                                ("b".into(), rel("Rel").construct("ahead", vec![])),
                            ],
                            eq(attr("f", "back"), attr("b", "front")),
                        ),
                    ],
                });
                (body, vec!["Rel".into()])
            })
        }
    }

    fn names(set: &BTreeSet<Name>) -> Vec<&str> {
        set.iter().map(|n| n.as_str()).collect()
    }

    #[test]
    fn profile_plain_binding_reads_are_safe() {
        let q = RangeExpr::SetFormer(SetFormer {
            branches: vec![Branch::projecting(
                vec![attr("f", "front"), attr("b", "back")],
                vec![("f".into(), rel("Infront")), ("b".into(), rel("Ontop"))],
                eq(attr("f", "back"), attr("b", "front")),
            )],
        });
        let p = base_relations(&q, &TestDefs);
        assert_eq!(names(&p.reads), ["Infront", "Ontop"]);
        assert!(p.unsafe_reads.is_empty());
        assert!(!p.unresolved);
        assert!(p.disjoint_from(&["Other".into()]));
        assert!(!p.disjoint_from(&["Ontop".into()]));
        assert!(p.monotone_in(&["Infront".into(), "Ontop".into()]));
    }

    #[test]
    fn profile_predicate_reads_are_unsafe() {
        // Negated membership: inserts into `Blocked` can *remove*
        // result tuples.
        let q = RangeExpr::SetFormer(SetFormer {
            branches: vec![Branch::each(
                "r",
                rel("Infront"),
                not(member("r", rel("Blocked"))),
            )],
        });
        let p = base_relations(&q, &TestDefs);
        assert_eq!(names(&p.reads), ["Blocked", "Infront"]);
        assert_eq!(names(&p.unsafe_reads), ["Blocked"]);
        assert!(!p.monotone_in(&["Blocked".into()]));
        assert!(p.monotone_in(&["Infront".into()]));
    }

    #[test]
    fn profile_constructor_application_tracks_provenance() {
        // Infront{ahead()} — the body's formal `Rel` resolves to the
        // actual `Infront`; the recursive self-application is
        // cycle-guarded.
        let q = rel("Infront").construct("ahead", vec![]);
        let p = base_relations(&q, &TestDefs);
        assert_eq!(names(&p.reads), ["Infront"]);
        assert!(p.unsafe_reads.is_empty());
        assert!(!p.unresolved);
    }

    #[test]
    fn profile_selector_bodies_are_chased_and_unsafe() {
        let q = rel("Infront").select("shadowed", vec![]);
        let p = base_relations(&q, &TestDefs);
        assert_eq!(names(&p.reads), ["Hidden", "Infront"]);
        assert_eq!(names(&p.unsafe_reads), ["Hidden"]);
    }

    #[test]
    fn profile_unknown_definitions_mark_unresolved() {
        let q = rel("Infront").select("mystery", vec![]);
        let p = base_relations(&q, &TestDefs);
        assert!(p.unresolved);
        // Unresolved profiles never qualify for filtering or warmth.
        assert!(!p.disjoint_from(&["Unrelated".into()]));
        assert!(!p.monotone_in(&["Unrelated".into()]));
    }

    #[test]
    fn profile_computed_constructor_base_is_unsafe() {
        // The application's base is itself a set former over `Seed`:
        // its value feeds the fixpoint seed outside the delta rules.
        let computed = RangeExpr::SetFormer(SetFormer {
            branches: vec![Branch::each("s", rel("Seed"), tru())],
        });
        let q = computed.construct("ahead", vec![]);
        let p = base_relations(&q, &TestDefs);
        assert!(p.reads.contains("Seed"));
        assert!(p.unsafe_reads.contains("Seed"));
    }
}
