//! Join planning for set-former branches: turn conjunctive equality
//! predicates into indexed access paths.
//!
//! The paper's set-oriented evaluation claim (§3) assumes the engine
//! evaluates a branch such as
//!
//! ```text
//! <f.front, b.back> OF EACH f, b IN Infront: f.back = b.front
//! ```
//!
//! as a *join*, not as a filtered cross product. The reference
//! evaluator's nested loops enumerate `|Infront|²` combinations; this
//! module recovers the join structure statically so the evaluator can
//! run an **index-nested-loop join** instead: scan one range, and for
//! every other range probe a [`dc_index::HashIndex`] keyed on the
//! equality columns, touching only matching tuples.
//!
//! The pass has two halves:
//!
//! * [`extract_eq_atoms`] walks the branch predicate's top-level
//!   conjunction and collects equality atoms `x.a = rhs` where `x` is a
//!   branch-bound variable and `rhs` is a constant, a parameter, an
//!   outer (enclosing-scope) attribute, or another branch variable's
//!   attribute. Atoms under `OR` / `NOT` / quantifiers are *not*
//!   extracted — they stay in the residual predicate.
//! * [`plan_branch`] orders the branch's binding positions greedily by
//!   estimated cost, using [`dc_index::RelationStats`] cardinalities and
//!   the System-R `1/distinct` equality selectivity: at each step it
//!   picks the cheapest position, preferring positions whose equality
//!   atoms are fully bound by earlier steps (an index probe) over full
//!   scans.
//!
//! The plan is *advisory*: the executor re-evaluates the full predicate
//! for every surviving combination, so a plan can only skip
//! combinations that equality atoms already reject — semantics
//! (including error semantics for the residual) are unchanged. The
//! executor also *demotes* atoms it cannot realise safely (unknown
//! parameters, unresolvable outer variables, cross-type keys) back to
//! the residual, so planning never has to be conservative about
//! evaluation-time concerns.

use dc_index::RelationStats;
use dc_value::Schema;

use crate::ast::{Branch, CmpOp, Formula, ScalarExpr, Var};

/// The non-probed side of an equality atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeySource {
    /// `attr` of the branch variable bound at `position` — a genuine
    /// join key, usable once that position is bound.
    Binding {
        /// Binding position (index into `branch.bindings`).
        position: usize,
        /// Attribute name on that binding's range.
        attr: String,
    },
    /// An expression free of *branch* variables: a constant, a
    /// parameter, or an outer variable's attribute. Usable immediately.
    Free(ScalarExpr),
}

/// One usable equality atom: `bindings[position].attr = source`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EqAtom {
    /// The probed binding position.
    pub position: usize,
    /// The probed attribute name.
    pub attr: String,
    /// The key-producing side.
    pub source: KeySource,
}

/// How one binding position is enumerated by the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Access {
    /// Iterate every tuple of the range.
    Scan,
    /// Probe a hash index on the atoms' attributes with keys computed
    /// from already-bound values.
    Probe(Vec<EqAtom>),
}

/// One step of a branch plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// The binding position this step enumerates.
    pub position: usize,
    /// Scan or probe.
    pub access: Access,
}

/// An ordered access plan covering every binding position of a branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchPlan {
    /// Steps in execution order; each binding position appears exactly
    /// once.
    pub steps: Vec<PlanStep>,
}

impl BranchPlan {
    /// Does the plan use at least one index probe? (A probe-free plan
    /// in declaration order is exactly the reference nested loop.)
    pub fn has_probe(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s.access, Access::Probe(_)))
    }

    /// The trivial plan: scan every position in declaration order.
    pub fn all_scans(n: usize) -> BranchPlan {
        BranchPlan {
            steps: (0..n)
                .map(|position| PlanStep {
                    position,
                    access: Access::Scan,
                })
                .collect(),
        }
    }
}

/// Does the expression avoid every branch variable? (Then it is
/// evaluable before the branch loops start: constants, parameters,
/// outer variables.)
fn free_of_branch_vars(e: &ScalarExpr, branch_vars: &[&Var]) -> bool {
    match e {
        ScalarExpr::Const(_) | ScalarExpr::Param(_) => true,
        ScalarExpr::Attr(v, _) => !branch_vars.contains(&v),
        ScalarExpr::Arith(l, _, r) => {
            free_of_branch_vars(l, branch_vars) && free_of_branch_vars(r, branch_vars)
        }
    }
}

/// `e` as `position.attr` of a branch variable, if it is exactly that.
fn as_branch_attr(e: &ScalarExpr, branch: &Branch) -> Option<(usize, String)> {
    if let ScalarExpr::Attr(v, a) = e {
        // Innermost declaration wins, matching evaluator name lookup.
        branch
            .bindings
            .iter()
            .rposition(|(bv, _)| bv == v)
            .map(|pos| (pos, a.clone()))
    } else {
        None
    }
}

/// Flatten the top-level conjunction of a formula.
fn conjuncts(f: &Formula) -> Vec<&Formula> {
    let mut out = Vec::new();
    let mut stack = vec![f];
    while let Some(g) = stack.pop() {
        match g {
            Formula::And(a, b) => {
                // Right child first, so popping yields left-to-right.
                stack.push(b);
                stack.push(a);
            }
            other => out.push(other),
        }
    }
    out
}

/// Extract the equality atoms of a branch usable as probe keys.
///
/// Only top-level conjuncts of the form `x.a = rhs` (or mirrored)
/// qualify, where `x` is a branch variable and `rhs` is either free of
/// branch variables ([`KeySource::Free`]) or another branch variable's
/// attribute ([`KeySource::Binding`], emitted symmetrically for both
/// directions). Branches with shadowed (duplicate) binding names yield
/// no atoms: reordering their loops would change name resolution.
pub fn extract_eq_atoms(branch: &Branch) -> Vec<EqAtom> {
    let branch_vars: Vec<&Var> = branch.bindings.iter().map(|(v, _)| v).collect();
    {
        let mut seen = branch_vars.clone();
        seen.sort();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Vec::new();
        }
    }
    let mut atoms = Vec::new();
    for c in conjuncts(&branch.predicate) {
        let Formula::Cmp(l, CmpOp::Eq, r) = c else {
            continue;
        };
        let lb = as_branch_attr(l, branch);
        let rb = as_branch_attr(r, branch);
        match (lb, rb) {
            (Some((lp, la)), Some((rp, ra))) if lp != rp => {
                atoms.push(EqAtom {
                    position: lp,
                    attr: la.clone(),
                    source: KeySource::Binding {
                        position: rp,
                        attr: ra.clone(),
                    },
                });
                atoms.push(EqAtom {
                    position: rp,
                    attr: ra,
                    source: KeySource::Binding {
                        position: lp,
                        attr: la,
                    },
                });
            }
            (Some((lp, la)), None) if free_of_branch_vars(r, &branch_vars) => {
                atoms.push(EqAtom {
                    position: lp,
                    attr: la,
                    source: KeySource::Free(r.clone()),
                });
            }
            (None, Some((rp, ra))) if free_of_branch_vars(l, &branch_vars) => {
                atoms.push(EqAtom {
                    position: rp,
                    attr: ra,
                    source: KeySource::Free(l.clone()),
                });
            }
            _ => {}
        }
    }
    atoms
}

/// One usable equality atom of a quantified subformula
/// (`SOME x IN R: … x.attr = key …` or the `ALL` dual): the probed
/// attribute on the quantified range, and the key expression, which is
/// free of the quantified variable and therefore evaluable in the
/// *enclosing* scope before the range is enumerated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantAtom {
    /// The probed attribute name on the quantified range.
    pub attr: String,
    /// The key-producing expression (may reference outer variables,
    /// parameters, and constants — anything but the quantified
    /// variable).
    pub key: ScalarExpr,
}

/// Does the expression mention the quantified variable anywhere?
fn mentions_var(e: &ScalarExpr, var: &Var) -> bool {
    match e {
        ScalarExpr::Const(_) | ScalarExpr::Param(_) => false,
        ScalarExpr::Attr(v, _) => v == var,
        ScalarExpr::Arith(l, _, r) => mentions_var(l, var) || mentions_var(r, var),
    }
}

/// Extract the equality atoms of a quantifier body usable as existence
/// probe keys — the quantifier counterpart of [`extract_eq_atoms`].
///
/// Only top-level conjuncts of the body of the form `var.attr = key`
/// (or mirrored) qualify, where `key` avoids `var` entirely. Atoms
/// under `OR` / `NOT` / nested quantifiers stay in the residual: the
/// evaluator re-checks the *full* body on every probed tuple, so the
/// atoms only have to be sound as a filter, never complete.
///
/// For `SOME` the probe result is scanned for a body witness; for
/// `ALL` any tuple outside the probed bucket falsifies the conjunct
/// and hence the body, so the quantifier can only hold if the bucket
/// covers the whole range (checked by the evaluator before the
/// residual pass).
pub fn extract_quant_atoms(var: &Var, body: &Formula) -> Vec<QuantAtom> {
    let mut atoms = Vec::new();
    for c in conjuncts(body) {
        let Formula::Cmp(l, CmpOp::Eq, r) = c else {
            continue;
        };
        let as_var_attr = |e: &ScalarExpr| match e {
            ScalarExpr::Attr(v, a) if v == var => Some(a.clone()),
            _ => None,
        };
        match (as_var_attr(l), as_var_attr(r)) {
            (Some(attr), None) if !mentions_var(r, var) => atoms.push(QuantAtom {
                attr,
                key: r.clone(),
            }),
            (None, Some(attr)) if !mentions_var(l, var) => atoms.push(QuantAtom {
                attr,
                key: l.clone(),
            }),
            _ => {}
        }
    }
    atoms
}

/// Order the branch's binding positions into an index-nested-loop plan.
///
/// Greedy System-R-style ordering: repeatedly pick the unbound position
/// with the lowest estimated enumeration cost, where a position whose
/// equality atoms are all *available* (sources free, or bound by
/// earlier steps) costs `cardinality × Π 1/distinct(attr)` and an
/// unsupported position costs its full cardinality. Ties break toward
/// declaration order, so plans are deterministic and the no-atom case
/// degenerates to the reference scan order.
pub fn plan_branch(branch: &Branch, schemas: &[&Schema], stats: &[RelationStats]) -> BranchPlan {
    let n = branch.bindings.len();
    debug_assert_eq!(schemas.len(), n);
    debug_assert_eq!(stats.len(), n);
    let atoms = extract_eq_atoms(branch);
    if atoms.is_empty() {
        return BranchPlan::all_scans(n);
    }
    let mut bound = vec![false; n];
    let mut steps = Vec::with_capacity(n);
    while steps.len() < n {
        let mut best: Option<(f64, usize, Vec<EqAtom>)> = None;
        for p in 0..n {
            if bound[p] {
                continue;
            }
            let usable: Vec<EqAtom> = atoms
                .iter()
                .filter(|a| {
                    a.position == p
                        && match &a.source {
                            KeySource::Free(_) => true,
                            KeySource::Binding { position, .. } => bound[*position],
                        }
                })
                .cloned()
                .collect();
            let mut est = stats[p].cardinality as f64;
            for a in &usable {
                if let Ok(pos) = schemas[p].position(&a.attr) {
                    est *= stats[p].eq_selectivity(pos);
                }
            }
            // Prefer probes over scans at equal estimates.
            let better = match &best {
                None => true,
                Some((best_est, _, best_atoms)) => {
                    est < *best_est
                        || (est == *best_est && best_atoms.is_empty() && !usable.is_empty())
                }
            };
            if better {
                best = Some((est, p, usable));
            }
        }
        let (_, p, usable) = best.expect("an unbound position always exists");
        bound[p] = true;
        let access = if usable.is_empty() {
            Access::Scan
        } else {
            Access::Probe(usable)
        };
        steps.push(PlanStep {
            position: p,
            access,
        });
    }
    BranchPlan { steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use dc_relation::Relation;
    use dc_value::{tuple, Domain, Schema};

    fn edge_schema() -> Schema {
        Schema::of(&[("front", Domain::Str), ("back", Domain::Str)])
    }

    /// The paper's two-variable join branch:
    /// `<f.front, b.back> OF EACH f, b IN Infront: f.back = b.front`.
    fn join_branch() -> Branch {
        Branch::projecting(
            vec![attr("f", "front"), attr("b", "back")],
            vec![("f".into(), rel("Infront")), ("b".into(), rel("Infront"))],
            eq(attr("f", "back"), attr("b", "front")),
        )
    }

    #[test]
    fn extracts_symmetric_binding_atoms() {
        let atoms = extract_eq_atoms(&join_branch());
        assert_eq!(atoms.len(), 2);
        assert_eq!(
            atoms[0],
            EqAtom {
                position: 0,
                attr: "back".into(),
                source: KeySource::Binding {
                    position: 1,
                    attr: "front".into()
                },
            }
        );
        assert_eq!(
            atoms[1],
            EqAtom {
                position: 1,
                attr: "front".into(),
                source: KeySource::Binding {
                    position: 0,
                    attr: "back".into()
                },
            }
        );
    }

    #[test]
    fn extracts_constant_and_param_atoms() {
        let b = Branch::each(
            "r",
            rel("Infront"),
            eq(attr("r", "front"), cnst("vase")).and(eq(param("Obj"), attr("r", "back"))),
        );
        let atoms = extract_eq_atoms(&b);
        assert_eq!(atoms.len(), 2);
        assert!(matches!(
            &atoms[0].source,
            KeySource::Free(ScalarExpr::Const(_))
        ));
        assert_eq!(atoms[1].attr, "back");
        assert!(matches!(&atoms[1].source, KeySource::Free(ScalarExpr::Param(p)) if p == "Obj"));
    }

    #[test]
    fn outer_variable_is_a_free_source() {
        // `o` is not bound by this branch — its attribute is a free key.
        let b = Branch::each(
            "r",
            rel("Infront"),
            eq(attr("r", "front"), attr("o", "part")),
        );
        let atoms = extract_eq_atoms(&b);
        assert_eq!(atoms.len(), 1);
        assert!(matches!(&atoms[0].source, KeySource::Free(ScalarExpr::Attr(v, _)) if v == "o"));
    }

    #[test]
    fn non_equality_and_disjunctive_atoms_ignored() {
        // `<`, `OR`, `NOT`, and quantified equalities must not produce
        // probe atoms — they stay residual.
        let b = Branch::each(
            "r",
            rel("Infront"),
            lt(attr("r", "front"), cnst("z"))
                .and(eq(attr("r", "front"), cnst("a")).or(eq(attr("r", "back"), cnst("b"))))
                .and(not(eq(attr("r", "front"), cnst("q"))))
                .and(some(
                    "x",
                    rel("Infront"),
                    eq(attr("x", "front"), attr("r", "back")),
                )),
        );
        assert!(extract_eq_atoms(&b).is_empty());
    }

    #[test]
    fn same_position_equality_is_not_a_join_key() {
        let b = Branch::each(
            "r",
            rel("Infront"),
            eq(attr("r", "front"), attr("r", "back")),
        );
        assert!(extract_eq_atoms(&b).is_empty());
    }

    #[test]
    fn shadowed_binding_names_disable_extraction() {
        let b = Branch {
            target: crate::ast::Target::Var("x".into()),
            bindings: vec![("x".into(), rel("Infront")), ("x".into(), rel("Infront"))],
            predicate: eq(attr("x", "front"), cnst("a")),
        };
        assert!(extract_eq_atoms(&b).is_empty());
        let plan = plan_branch(
            &b,
            &[&edge_schema(), &edge_schema()],
            &[
                RelationStats {
                    cardinality: 1,
                    distinct: vec![1, 1],
                },
                RelationStats {
                    cardinality: 1,
                    distinct: vec![1, 1],
                },
            ],
        );
        assert_eq!(plan, BranchPlan::all_scans(2));
    }

    #[test]
    fn join_plan_scans_once_probes_rest() {
        let rel_small =
            Relation::from_tuples(edge_schema(), vec![tuple!["a", "b"], tuple!["b", "c"]]).unwrap();
        let stats = RelationStats::collect(&rel_small);
        let schema = edge_schema();
        let plan = plan_branch(&join_branch(), &[&schema, &schema], &[stats.clone(), stats]);
        assert_eq!(plan.steps.len(), 2);
        assert!(matches!(plan.steps[0].access, Access::Scan));
        let Access::Probe(atoms) = &plan.steps[1].access else {
            panic!("second step must probe, got {plan:?}");
        };
        assert_eq!(atoms.len(), 1);
    }

    #[test]
    fn constant_probe_ordered_before_unselective_scan() {
        // `EACH big IN Big, EACH sel IN Sel: sel.front = "x" AND
        //  big.back = sel.back` — the planner should start with the
        // constant-keyed probe on Sel, then probe Big on the join key.
        let b = Branch::projecting(
            vec![attr("big", "front")],
            vec![("big".into(), rel("Big")), ("sel".into(), rel("Sel"))],
            eq(attr("sel", "front"), cnst("x")).and(eq(attr("big", "back"), attr("sel", "back"))),
        );
        let big = Relation::from_tuples(
            edge_schema(),
            (0..50).map(|i| tuple![format!("f{i}"), format!("b{i}")]),
        )
        .unwrap();
        let sel = Relation::from_tuples(
            edge_schema(),
            (0..10).map(|i| tuple![format!("s{i}"), format!("b{i}")]),
        )
        .unwrap();
        let schema = edge_schema();
        let plan = plan_branch(
            &b,
            &[&schema, &schema],
            &[RelationStats::collect(&big), RelationStats::collect(&sel)],
        );
        assert_eq!(plan.steps[0].position, 1, "{plan:?}");
        assert!(matches!(plan.steps[0].access, Access::Probe(_)));
        assert_eq!(plan.steps[1].position, 0);
        assert!(matches!(plan.steps[1].access, Access::Probe(_)));
    }

    #[test]
    fn quant_atoms_extracted_from_conjunction() {
        // SOME o IN Objects: o.part = r.front AND o.kind = "vase"
        let body =
            eq(attr("o", "part"), attr("r", "front")).and(eq(cnst("vase"), attr("o", "kind")));
        let atoms = extract_quant_atoms(&"o".to_string(), &body);
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[0].attr, "part");
        assert!(matches!(&atoms[0].key, ScalarExpr::Attr(v, a) if v == "r" && a == "front"));
        assert_eq!(atoms[1].attr, "kind");
        assert!(matches!(&atoms[1].key, ScalarExpr::Const(_)));
    }

    #[test]
    fn quant_atoms_skip_var_on_both_sides_and_non_conjuncts() {
        // o.a = o.b is not probe-able; disjunctive/negated/quantified
        // equalities stay residual.
        let body = eq(attr("o", "a"), attr("o", "b"))
            .and(eq(attr("o", "a"), cnst("x")).or(eq(attr("o", "b"), cnst("y"))))
            .and(not(eq(attr("o", "a"), cnst("z"))))
            .and(some("i", rel("R"), eq(attr("i", "k"), attr("o", "a"))))
            .and(lt(attr("o", "a"), cnst("w")));
        assert!(extract_quant_atoms(&"o".to_string(), &body).is_empty());
        // Arithmetic over the quantified variable is not a key either.
        let arith = eq(add(attr("o", "n"), cnst(1i64)), attr("r", "n"));
        assert!(extract_quant_atoms(&"o".to_string(), &arith).is_empty());
        // …but arithmetic over outer variables is.
        let outer = eq(attr("o", "n"), add(attr("r", "n"), cnst(1i64)));
        assert_eq!(extract_quant_atoms(&"o".to_string(), &outer).len(), 1);
    }

    #[test]
    fn no_atoms_degenerates_to_declaration_order() {
        let b = Branch::projecting(
            vec![attr("a", "front")],
            vec![("a".into(), rel("R")), ("b".into(), rel("S"))],
            tru(),
        );
        let schema = edge_schema();
        let plan = plan_branch(
            &b,
            &[&schema, &schema],
            &[
                RelationStats {
                    cardinality: 9,
                    distinct: vec![3, 3],
                },
                RelationStats {
                    cardinality: 1,
                    distinct: vec![1, 1],
                },
            ],
        );
        assert_eq!(plan, BranchPlan::all_scans(2));
        assert!(!plan.has_probe());
    }
}
