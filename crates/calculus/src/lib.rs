//! Tuple relational calculus with set formers, selectors, and
//! constructor applications — the expression language of the paper.
//!
//! The paper's central example (§2.3) is expressible directly:
//!
//! ```text
//! aheadrel { EACH r IN Infront: TRUE,
//!            <f.front, b.back> OF EACH f, b IN Infront: f.back = b.front }
//! ```
//!
//! Crate layout:
//!
//! * [`ast`] — the expression types: [`ast::RangeExpr`] (relation-valued),
//!   [`ast::Formula`] (truth-valued), [`ast::ScalarExpr`] (value-valued),
//!   plus [`ast::SelectorDef`], the named-predicate abstraction of §2.3.
//! * [`builder`] — ergonomic constructors for writing ASTs in Rust.
//! * [`mod@env`] — the [`env::Catalog`] trait through which evaluation
//!   resolves relation names, scalar parameters, selectors, and
//!   constructor applications (implemented by `dc-core`'s database).
//! * [`eval`] — the evaluator: index-nested-loop execution of set-former
//!   branches, index existence probes for quantifiers, and decorrelated
//!   probes for *correlated* quantified ranges (all via [`joinplan`]),
//!   with the original nested-loop semantics kept as the reference path
//!   every plan must agree with. Demoted or refused access paths leave
//!   a planner trace ([`eval::Evaluator::plan_notes`]).
//! * [`joinplan`] — the predicate-analysis passes: conjunctive
//!   equality-atom extraction and scan/probe ordering for branches
//!   ([`joinplan::plan_branch`]), NNF-aware quantifier probe planning
//!   ([`joinplan::plan_quant_probe`] — `SOME` witnesses, `ALL`
//!   falsifiers for implication-shaped bodies, covering checks), and
//!   the correlated-branch split with joint keys over multi-binding
//!   join views ([`joinplan::decorrelate_branch`]; the single-variable
//!   wrapper [`joinplan::decorrelate_filter`] remains for callers of
//!   the filter shape).
//! * [`plan_event`] — the typed planner trace: [`plan_event::PlanEvent`]
//!   values (chosen access paths with their ordering rationale,
//!   demotion and refusal reasons) behind the string notes, plus the
//!   rendered [`plan_event::Explanation`] report used by `EXPLAIN`.
//! * [`positivity`] — §3.3's positivity constraint, implemented exactly
//!   as defined (parity of enclosing `NOT`s and `ALL`-range positions).
//! * [`rewrite`] — the one-sorted/De Morgan normalisation used in the
//!   paper's monotonicity lemma, plus substitution utilities.
//! * [`typeck`] — static checking of attribute references, comparability,
//!   and union compatibility across set-former branches.

// Evaluation errors must surface as `EvalError`, not panics: the
// library runs user-shaped queries. `unwrap`/`expect` are opt-in per
// site with a justification of why the invariant cannot fail.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod ast;
pub mod builder;
pub mod env;
pub mod error;
pub mod eval;
pub mod joinplan;
pub mod plan_event;
pub mod positivity;
pub mod rewrite;
pub mod typeck;

pub use ast::{Branch, CmpOp, Formula, RangeExpr, ScalarExpr, SelectorDef, SetFormer, Target};
pub use env::{Catalog, DecorrCached};
pub use error::EvalError;
pub use eval::{DecorrEntry, Evaluator, PARALLEL_SCAN_THRESHOLD};
pub use plan_event::{
    AccessStep, DecorrRefusalReason, Explanation, PlanEvent, QuantDemotionReason,
};
