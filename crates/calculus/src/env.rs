//! The evaluation environment: how expressions resolve names.
//!
//! Evaluation is parameterised over a [`Catalog`], which supplies
//! relation values, selector definitions, and — crucially — the meaning
//! of constructor applications. The reference evaluator knows nothing
//! about fixpoints: when it meets `base{c(args)}` it evaluates `base`
//! and `args` to relations and delegates to
//! [`Catalog::apply_constructor`]. `dc-core` implements that hook with
//! the §3.2 least-fixpoint machinery; during fixpoint iteration it
//! implements it by looking up the current iterate, which is exactly the
//! paper's reading of `applyᵢᵏ⁺¹ = gᵢ(apply₀ᵏ, …, applyₗᵏ)`.

use std::cell::RefCell;
use std::sync::Arc;

use dc_index::{HashIndex, RelationStats};
use dc_relation::Relation;
use dc_value::{FxHashMap, FxHashSet, Value};

use crate::ast::{Name, RangeExpr, SelectorDef};
use crate::error::EvalError;
use crate::eval::DecorrEntry;
use crate::rewrite;

/// A cached decorrelation decision for one correlated quantified range,
/// served through [`Catalog::decorr_entry`]. Catalogs that hold state
/// across evaluator lifetimes (the fixpoint solver, the database) store
/// both outcomes, so a refused rewrite is not re-analysed per evaluator
/// any more than a built one is re-materialised.
#[derive(Clone)]
pub enum DecorrCached {
    /// The range decorrelated; the entry holds the materialised join
    /// bucketed on the joint key.
    Built(Arc<DecorrEntry>),
    /// Decorrelation was refused (unsupported shape, unsplittable
    /// predicate, profitability gate, build error) — the evaluator
    /// falls back to the reference scan without re-running the
    /// analysis.
    Refused,
}

/// Name-resolution interface for evaluation.
pub trait Catalog {
    /// Resolve a relation name to its current value. Formal relation
    /// parameters of selectors/constructors are resolved here too: the
    /// caller installs them under their formal names.
    ///
    /// Returned by value: `Relation` is copy-on-write, so handing out
    /// an owned handle is a pointer bump, never a tuple-set copy.
    fn relation(&self, name: &str) -> Result<Relation, EvalError>;

    /// Resolve a selector definition.
    fn selector(&self, name: &str) -> Result<&SelectorDef, EvalError> {
        Err(EvalError::UnknownSelector(name.to_string()))
    }

    /// Give meaning to a constructor application `base{name(args)}`.
    fn apply_constructor(
        &self,
        _base: Relation,
        name: &str,
        _args: Vec<Relation>,
        _scalar_args: Vec<Value>,
    ) -> Result<Relation, EvalError> {
        Err(EvalError::UnknownConstructor(name.to_string()))
    }

    /// Resolve a free scalar parameter (one not bound by an enclosing
    /// selector application frame). Used by logical access paths, which
    /// are compiled plans "with dummy constants" (§4) filled in at run
    /// time.
    fn scalar_param(&self, name: &str) -> Result<Value, EvalError> {
        Err(EvalError::UnknownParam(name.to_string()))
    }

    /// A hash index over the relation `name` resolves to, keyed on
    /// `positions` — if the catalog maintains (or is willing to build)
    /// one. The evaluator's join executor consults this before building
    /// a throwaway index, so catalogs that keep relations across many
    /// evaluations (the fixpoint solver, most prominently) can amortise
    /// index construction. Implementations must return an index that is
    /// exactly consistent with [`Catalog::relation`] for `name`.
    fn index(&self, _name: &str, _positions: &[usize]) -> Option<Arc<HashIndex>> {
        None
    }

    /// Statistics of the relation `name` resolves to — if the catalog
    /// maintains (or is willing to compute and cache) them. The join
    /// planner consults this before paying an O(|relation|) collection
    /// pass per branch evaluation, so catalogs that keep relations
    /// across many evaluations (the fixpoint solver, the database) can
    /// maintain statistics incrementally next to their indexes.
    /// Implementations must return statistics exactly consistent with
    /// [`Catalog::relation`] for `name`.
    fn stats(&self, _name: &str) -> Option<Arc<RelationStats>> {
        None
    }

    /// A cached decorrelation decision for the correlated quantified
    /// range `range` — if the catalog maintains a decorrelation cache.
    /// Mirrors [`Catalog::index`]/[`Catalog::stats`]: the evaluator
    /// consults this before building a decorrelated entry of its own,
    /// so catalogs that live across many evaluator lifetimes (the
    /// fixpoint solver across branch evaluations and semi-naive rounds,
    /// the database across queries) amortise the materialised join.
    /// Implementations must serve entries that are exactly consistent
    /// with the current [`Catalog::version`]: a served entry must have
    /// been built against the catalog's *current* data snapshot
    /// (solver: drop the cache when the epoch moves; database:
    /// invalidate on mutation).
    fn decorr_entry(&self, _range: &RangeExpr) -> Option<DecorrCached> {
        None
    }

    /// Store a decorrelation decision the evaluator just computed for
    /// `range` — the write half of [`Catalog::decorr_entry`]. Default:
    /// discard (catalogs without solver state keep nothing).
    fn cache_decorr_entry(&self, _range: &RangeExpr, _entry: DecorrCached) {}

    /// Monotone data version of the catalog. Implementations that can
    /// change a relation's value *while an evaluator is alive* (the
    /// fixpoint solver commits peer deltas between rounds, mid-solve)
    /// must bump this on every such commit. Evaluators compare it
    /// against the version their syntax-keyed caches (range values,
    /// indexes, statistics, decorrelated ranges) were filled under and
    /// drop every stale entry on mismatch — scoping transient-index
    /// lifetime to one consistent snapshot of the catalog. Catalogs
    /// whose mutation requires `&mut self` (so no evaluator can be
    /// alive across a change) may keep the default constant `0`.
    fn version(&self) -> u64 {
        0
    }
}

/// Closure type for pluggable constructor semantics in [`MapCatalog`].
pub type ConstructorFn =
    Box<dyn Fn(Relation, Vec<Relation>) -> Result<Relation, EvalError> + Send + Sync>;

/// A simple in-memory catalog for tests and small programs.
#[derive(Default)]
pub struct MapCatalog {
    relations: Vec<(String, Relation)>,
    selectors: Vec<(String, SelectorDef)>,
    constructors: Vec<(String, ConstructorFn)>,
    params: Vec<(String, Value)>,
}

impl MapCatalog {
    /// An empty catalog.
    pub fn new() -> MapCatalog {
        MapCatalog::default()
    }

    /// Register (or replace) a relation under `name`.
    pub fn with_relation(mut self, name: impl Into<String>, rel: Relation) -> MapCatalog {
        self.insert_relation(name, rel);
        self
    }

    /// Register (or replace) a relation under `name` (mutating form).
    pub fn insert_relation(&mut self, name: impl Into<String>, rel: Relation) {
        let name = name.into();
        if let Some(slot) = self.relations.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = rel;
        } else {
            self.relations.push((name, rel));
        }
    }

    /// Register a selector definition.
    pub fn with_selector(mut self, def: SelectorDef) -> MapCatalog {
        self.selectors.push((def.name.clone(), def));
        self
    }

    /// Register constructor semantics as a closure (tests only; real
    /// constructor semantics live in `dc-core`).
    pub fn with_constructor_fn(mut self, name: impl Into<String>, f: ConstructorFn) -> MapCatalog {
        self.constructors.push((name.into(), f));
        self
    }

    /// Register a free scalar parameter value.
    pub fn with_param(mut self, name: impl Into<String>, value: Value) -> MapCatalog {
        self.params.push((name.into(), value));
        self
    }
}

impl Catalog for MapCatalog {
    fn relation(&self, name: &str) -> Result<Relation, EvalError> {
        self.relations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r.clone())
            .ok_or_else(|| EvalError::UnknownRelation(name.to_string()))
    }

    fn selector(&self, name: &str) -> Result<&SelectorDef, EvalError> {
        self.selectors
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d)
            .ok_or_else(|| EvalError::UnknownSelector(name.to_string()))
    }

    fn apply_constructor(
        &self,
        base: Relation,
        name: &str,
        args: Vec<Relation>,
        _scalar_args: Vec<Value>,
    ) -> Result<Relation, EvalError> {
        let f = self
            .constructors
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| f)
            .ok_or_else(|| EvalError::UnknownConstructor(name.to_string()))?;
        f(base, args)
    }

    fn scalar_param(&self, name: &str) -> Result<Value, EvalError> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| EvalError::UnknownParam(name.to_string()))
    }
}

/// Cache key for an index: (relation name, indexed positions).
type IndexKey = (String, Vec<usize>);

/// A catalog layered over another, overriding some relation names.
/// Used to bind formal relation parameters (`FOR Rel: …(Ontop: …)`)
/// without copying the base catalog.
pub struct Overlay<'a> {
    base: &'a dyn Catalog,
    overrides: Vec<(String, Relation)>,
    /// Indexes over override relations, built lazily on executor demand
    /// (or preloaded by a caller that maintains them incrementally, see
    /// `dc-core`'s fixpoint solver) and harvestable afterwards.
    indexes: RefCell<FxHashMap<IndexKey, Arc<HashIndex>>>,
    /// Statistics over override relations, same lifecycle as `indexes`:
    /// preloaded by callers that maintain them incrementally, computed
    /// lazily on planner demand otherwise, harvestable afterwards.
    stats: RefCell<FxHashMap<String, Arc<RelationStats>>>,
}

impl<'a> Overlay<'a> {
    /// Layer `overrides` over `base`.
    pub fn new(base: &'a dyn Catalog, overrides: Vec<(String, Relation)>) -> Overlay<'a> {
        Overlay {
            base,
            overrides,
            indexes: RefCell::new(FxHashMap::default()),
            stats: RefCell::new(FxHashMap::default()),
        }
    }

    /// Install a prebuilt index for an override relation. The index must
    /// describe exactly the relation registered under `name`.
    pub fn preload_index(&mut self, name: impl Into<String>, idx: Arc<HashIndex>) {
        let key = (name.into(), idx.positions().to_vec());
        self.indexes.borrow_mut().insert(key, idx);
    }

    /// Install precomputed statistics for an override relation. The
    /// snapshot must describe exactly the relation registered under
    /// `name`.
    pub fn preload_stats(&mut self, name: impl Into<String>, stats: Arc<RelationStats>) {
        self.stats.borrow_mut().insert(name.into(), stats);
    }

    /// All indexes currently cached (preloaded or demand-built), so a
    /// long-lived caller can carry them into the next evaluation round.
    pub fn harvest_indexes(&self) -> Vec<(String, Arc<HashIndex>)> {
        self.indexes
            .borrow()
            .iter()
            .map(|((n, _), idx)| (n.clone(), idx.clone()))
            .collect()
    }

    /// All statistics currently cached (preloaded or demand-computed),
    /// the statistics counterpart of [`Overlay::harvest_indexes`].
    pub fn harvest_stats(&self) -> Vec<(String, Arc<RelationStats>)> {
        self.stats
            .borrow()
            .iter()
            .map(|(n, s)| (n.clone(), s.clone()))
            .collect()
    }

    /// May a decorrelation entry for `range` be shared through the base
    /// catalog's solver-scoped cache? Only if the range resolves no
    /// name this overlay overrides: two overlays over the same base can
    /// bind different relations to one formal name (fixpoint equations
    /// do exactly that), so an entry built under one overlay must not
    /// be served under another. The check expands selector predicates
    /// transitively — a selector body may reference relations by name
    /// too — and refuses on any unresolvable selector.
    fn decorr_shareable(&self, range: &RangeExpr) -> bool {
        if self.overrides.is_empty() {
            return true;
        }
        let mut rels = rewrite::relation_names(range);
        let mut pending: Vec<Name> = rewrite::selector_names(range).into_iter().collect();
        let mut seen: FxHashSet<Name> = FxHashSet::default();
        while let Some(s) = pending.pop() {
            if !seen.insert(s.clone()) {
                continue;
            }
            let Ok(def) = self.selector(&s) else {
                return false;
            };
            rels.extend(rewrite::relation_names_formula(&def.predicate));
            pending.extend(rewrite::selector_names_formula(&def.predicate));
        }
        !self.overrides.iter().any(|(n, _)| rels.contains(n))
    }
}

impl Catalog for Overlay<'_> {
    fn relation(&self, name: &str) -> Result<Relation, EvalError> {
        if let Some((_, r)) = self.overrides.iter().find(|(n, _)| n == name) {
            return Ok(r.clone());
        }
        self.base.relation(name)
    }

    fn index(&self, name: &str, positions: &[usize]) -> Option<Arc<HashIndex>> {
        match self.overrides.iter().find(|(n, _)| n == name) {
            Some((_, rel)) => {
                let key = (name.to_string(), positions.to_vec());
                let mut cache = self.indexes.borrow_mut();
                Some(
                    cache
                        .entry(key)
                        .or_insert_with(|| Arc::new(HashIndex::build(rel, positions.to_vec())))
                        .clone(),
                )
            }
            None => self.base.index(name, positions),
        }
    }

    fn stats(&self, name: &str) -> Option<Arc<RelationStats>> {
        match self.overrides.iter().find(|(n, _)| n == name) {
            Some((_, rel)) => {
                let mut cache = self.stats.borrow_mut();
                Some(
                    cache
                        .entry(name.to_string())
                        .or_insert_with(|| Arc::new(RelationStats::collect(rel)))
                        .clone(),
                )
            }
            None => self.base.stats(name),
        }
    }

    fn selector(&self, name: &str) -> Result<&SelectorDef, EvalError> {
        self.base.selector(name)
    }

    fn decorr_entry(&self, range: &RangeExpr) -> Option<DecorrCached> {
        if !self.decorr_shareable(range) {
            return None;
        }
        self.base.decorr_entry(range)
    }

    fn cache_decorr_entry(&self, range: &RangeExpr, entry: DecorrCached) {
        if self.decorr_shareable(range) {
            self.base.cache_decorr_entry(range, entry);
        }
    }

    fn apply_constructor(
        &self,
        base: Relation,
        name: &str,
        args: Vec<Relation>,
        scalar_args: Vec<Value>,
    ) -> Result<Relation, EvalError> {
        self.base.apply_constructor(base, name, args, scalar_args)
    }

    fn scalar_param(&self, name: &str) -> Result<Value, EvalError> {
        self.base.scalar_param(name)
    }

    fn version(&self) -> u64 {
        // Overrides are immutable for the overlay's lifetime; only the
        // base can change underneath an evaluator.
        self.base.version()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_value::{tuple, Domain, Schema};

    fn rel() -> Relation {
        Relation::from_tuples(
            Schema::of(&[("x", Domain::Int)]),
            vec![tuple![1i64], tuple![2i64]],
        )
        .unwrap()
    }

    #[test]
    fn map_catalog_resolution() {
        let cat = MapCatalog::new()
            .with_relation("R", rel())
            .with_param("P", Value::Int(9));
        assert_eq!(cat.relation("R").unwrap().len(), 2);
        assert!(matches!(
            cat.relation("S"),
            Err(EvalError::UnknownRelation(_))
        ));
        assert_eq!(cat.scalar_param("P").unwrap(), Value::Int(9));
        assert!(cat.selector("s").is_err());
        assert!(cat.apply_constructor(rel(), "c", vec![], vec![]).is_err());
    }

    #[test]
    fn insert_relation_replaces() {
        let mut cat = MapCatalog::new().with_relation("R", rel());
        let empty = Relation::new(Schema::of(&[("x", Domain::Int)]));
        cat.insert_relation("R", empty);
        assert!(cat.relation("R").unwrap().is_empty());
    }

    #[test]
    fn overlay_shadows_base() {
        let cat = MapCatalog::new().with_relation("R", rel());
        let empty = Relation::new(Schema::of(&[("x", Domain::Int)]));
        let ov = Overlay::new(&cat, vec![("R".into(), empty)]);
        assert!(ov.relation("R").unwrap().is_empty());
        // Non-overridden names fall through.
        assert!(matches!(
            ov.relation("S"),
            Err(EvalError::UnknownRelation(_))
        ));
    }

    #[test]
    fn constructor_fn_hook() {
        let cat =
            MapCatalog::new().with_constructor_fn("identity", Box::new(|base, _args| Ok(base)));
        let out = cat
            .apply_constructor(rel(), "identity", vec![], vec![])
            .unwrap();
        assert_eq!(out.len(), 2);
    }
}
