//! The positivity constraint of §3.3, implemented exactly as defined.
//!
//! > **Definition** (names appearing under NOT and ALL): a name appears
//! > under `ALL` if it appears in the *range* expression of the
//! > quantifier (names in the body do not count that `ALL`); it appears
//! > under `NOT` if it appears in the negated factor.
//! >
//! > **Definition** (positivity): `f(Rel₁, …, Relₙ)` satisfies the
//! > positivity constraint if each occurrence of `Relᵢ` appears under an
//! > even total number of negations and universal quantifiers.
//!
//! The paper's lemma: positive expressions are monotone in all tracked
//! arguments (via the one-sorted rewrite `ALL r IN Rel (p) ≡
//! ALL r (NOT(r IN Rel) OR p)`, which turns every ALL-range occurrence
//! into a NOT occurrence, then De Morgan + double negation). Hence the
//! fixpoint iteration of §3.2 converges. The DBPL compiler — and our
//! checked API — accepts only positive constructors; `nonsense` is
//! rejected here, and so is the convergent-but-non-monotone `strange`
//! (§3.3 explicitly keeps it out of the language).

use dc_value::FxHashSet;

use crate::ast::{Formula, Name, RangeExpr, Target};

/// What counts as a tracked occurrence.
#[derive(Debug, Clone)]
pub enum Tracked {
    /// Occurrences of these relation names (used to check a constructor
    /// body, where the recursive references are the formal base name
    /// and constructor applications).
    Names(FxHashSet<Name>),
    /// Every constructor application `base{c(…)}` (used for whole-query
    /// checks, e.g. §4 Case 3 requires the *query* predicate over a
    /// constructed range to be positive before union distribution).
    AllConstructed,
}

impl Tracked {
    /// Track a single name.
    pub fn name(n: impl Into<Name>) -> Tracked {
        let mut s = FxHashSet::default();
        s.insert(n.into());
        Tracked::Names(s)
    }

    /// Track a set of names.
    pub fn names<I: IntoIterator<Item = S>, S: Into<Name>>(names: I) -> Tracked {
        Tracked::Names(names.into_iter().map(Into::into).collect())
    }

    fn matches_name(&self, n: &str) -> bool {
        match self {
            Tracked::Names(set) => set.contains(n),
            Tracked::AllConstructed => false,
        }
    }
}

/// A tracked occurrence at odd parity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending name (relation name or constructor name).
    pub name: String,
    /// Number of enclosing NOTs plus ALL-range positions (odd).
    pub parity: usize,
    /// Breadcrumb of enclosing negative positions, innermost last.
    pub context: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "`{}` occurs under {} negation(s)/universal range(s) ({})",
            self.name, self.parity, self.context
        )
    }
}

struct Walker<'t> {
    tracked: &'t Tracked,
    violations: Vec<Violation>,
    /// Breadcrumb stack of negative positions currently enclosing.
    trail: Vec<&'static str>,
}

impl Walker<'_> {
    fn parity(&self) -> usize {
        self.trail.len()
    }

    fn record(&mut self, name: &str) {
        if self.parity() % 2 == 1 {
            self.violations.push(Violation {
                name: name.to_string(),
                parity: self.parity(),
                context: self.trail.join(" > "),
            });
        }
    }

    fn formula(&mut self, f: &Formula) {
        match f {
            Formula::True | Formula::False | Formula::Cmp(..) => {}
            Formula::And(a, b) | Formula::Or(a, b) => {
                self.formula(a);
                self.formula(b);
            }
            Formula::Not(inner) => {
                self.trail.push("NOT");
                self.formula(inner);
                self.trail.pop();
            }
            Formula::Some(_, range, body) => {
                // SOME r IN Rel (p) ≡ SOME r (r IN Rel AND p):
                // both range and body keep the current parity.
                self.range(range);
                self.formula(body);
            }
            Formula::All(_, range, body) => {
                // ALL r IN Rel (p) ≡ ALL r (NOT(r IN Rel) OR p):
                // the range flips parity, the body does not.
                self.trail.push("ALL-range");
                self.range(range);
                self.trail.pop();
                self.formula(body);
            }
            Formula::Member(_, range) => self.range(range),
            Formula::TupleIn(_, range) => self.range(range),
        }
    }

    fn range(&mut self, r: &RangeExpr) {
        match r {
            RangeExpr::Rel(name) => {
                if self.tracked.matches_name(name) {
                    self.record(name);
                }
            }
            RangeExpr::Selected { base, .. } => {
                // Selection is monotone in its base: parity unchanged.
                self.range(base);
            }
            RangeExpr::Constructed {
                base,
                constructor,
                args,
                ..
            } => {
                if matches!(self.tracked, Tracked::AllConstructed) {
                    self.record(constructor);
                }
                self.range(base);
                for a in args {
                    self.range(a);
                }
            }
            RangeExpr::SetFormer(sf) => {
                for b in &sf.branches {
                    for (_, range) in &b.bindings {
                        self.range(range);
                    }
                    self.formula(&b.predicate);
                    if let Target::Tuple(_) = &b.target {
                        // Scalar targets contain no relation references.
                    }
                }
            }
        }
    }
}

/// Check a range expression against the positivity constraint,
/// returning every violating occurrence.
pub fn check_range(range: &RangeExpr, tracked: &Tracked) -> Vec<Violation> {
    let mut w = Walker {
        tracked,
        violations: Vec::new(),
        trail: Vec::new(),
    };
    w.range(range);
    w.violations
}

/// Check a formula against the positivity constraint.
pub fn check_formula(formula: &Formula, tracked: &Tracked) -> Vec<Violation> {
    let mut w = Walker {
        tracked,
        violations: Vec::new(),
        trail: Vec::new(),
    };
    w.formula(formula);
    w.violations
}

/// Convenience: is the range expression positive in the tracked names?
pub fn is_positive(range: &RangeExpr, tracked: &Tracked) -> bool {
    check_range(range, tracked).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Branch;
    use crate::builder::*;

    /// The paper's `nonsense` constructor body (§3.3):
    /// `EACH r IN Rel: NOT (r IN Rel{nonsense})` — one NOT over the
    /// recursive occurrence ⇒ violation.
    #[test]
    fn nonsense_is_rejected() {
        let body = set_former(vec![Branch::each(
            "r",
            rel("Rel"),
            not(member("r", rel("Rel").construct("nonsense", vec![]))),
        )]);
        let v = check_range(&body, &Tracked::AllConstructed);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].name, "nonsense");
        assert_eq!(v[0].parity, 1);
        assert!(v[0].context.contains("NOT"));
    }

    /// The paper's `strange` constructor (§3.3):
    /// `EACH r IN Baserel: NOT SOME s IN Baserel{strange}
    ///      (r.number = s.number + 1)`
    /// — also one NOT ⇒ rejected by the compiler even though its
    /// iteration happens to converge.
    #[test]
    fn strange_is_rejected() {
        let body = set_former(vec![Branch::each(
            "r",
            rel("Baserel"),
            not(some(
                "s",
                rel("Baserel").construct("strange", vec![]),
                eq(attr("r", "number"), add(attr("s", "number"), cnst(1u64))),
            )),
        )]);
        assert!(!is_positive(&body, &Tracked::AllConstructed));
    }

    /// The `ahead` body is positive: recursive occurrence only as a
    /// binding range.
    #[test]
    fn ahead_is_positive() {
        let body = set_former(vec![
            Branch::each("r", rel("Rel"), tru()),
            Branch::projecting(
                vec![attr("f", "front"), attr("b", "tail")],
                vec![
                    ("f".into(), rel("Rel")),
                    ("b".into(), rel("Rel").construct("ahead", vec![])),
                ],
                eq(attr("f", "back"), attr("b", "head")),
            ),
        ]);
        assert!(is_positive(&body, &Tracked::AllConstructed));
    }

    /// Double negation is even ⇒ positive, per the definition's "even
    /// total number". (Built with explicit `Formula::Not` because the
    /// `negate()` builder collapses `NOT NOT`.)
    #[test]
    fn double_negation_is_positive() {
        let explicit = Formula::Not(Box::new(Formula::Not(Box::new(member("r", rel("Rec"))))));
        assert!(check_formula(&explicit, &Tracked::name("Rec")).is_empty());
    }

    /// ALL counts only for names in its *range*, not its body.
    #[test]
    fn all_range_vs_body() {
        // ALL x IN Rec (TRUE): Rec in range ⇒ parity 1 ⇒ violation.
        let in_range = all("x", rel("Rec"), tru());
        assert_eq!(check_formula(&in_range, &Tracked::name("Rec")).len(), 1);

        // ALL x IN Other (x IN Rec): Rec in body ⇒ parity 0 ⇒ ok.
        let in_body = all("x", rel("Other"), member("x", rel("Rec")));
        assert!(check_formula(&in_body, &Tracked::name("Rec")).is_empty());
    }

    /// NOT ALL range = parity 2 ⇒ even ⇒ positive.
    #[test]
    fn nested_not_all_is_even() {
        let f = Formula::Not(Box::new(all("x", rel("Rec"), tru())));
        assert!(check_formula(&f, &Tracked::name("Rec")).is_empty());
    }

    /// SOME keeps parity for both range and body.
    #[test]
    fn some_preserves_parity() {
        let f = some("x", rel("Rec"), member("x", rel("Rec")));
        assert!(check_formula(&f, &Tracked::name("Rec")).is_empty());
        let neg = Formula::Not(Box::new(f));
        let v = check_formula(&neg, &Tracked::name("Rec"));
        assert_eq!(v.len(), 2); // both occurrences now odd
    }

    /// Selection over a tracked base keeps parity (monotone).
    #[test]
    fn selected_base_transparent() {
        let r = rel("Rec").select("s", vec![cnst(1i64)]);
        let f = member("x", r);
        assert!(check_formula(&f, &Tracked::name("Rec")).is_empty());
        let neg = Formula::Not(Box::new(f));
        assert_eq!(check_formula(&neg, &Tracked::name("Rec")).len(), 1);
    }

    /// Untracked names never violate.
    #[test]
    fn untracked_names_ignored() {
        let f = not(member("r", rel("Base")));
        assert!(check_formula(&f, &Tracked::name("Rec")).is_empty());
    }

    /// Multiple violations are all reported.
    #[test]
    fn multiple_violations_reported() {
        let f = not(member("r", rel("Rec"))).and(all("x", rel("Rec"), tru()));
        let v = check_formula(&f, &Tracked::name("Rec"));
        assert_eq!(v.len(), 2);
        assert!(v[0].to_string().contains("Rec"));
    }

    /// Constructor args and base are checked at current parity.
    #[test]
    fn constructed_args_checked() {
        let r = rel("Base").construct("c", vec![rel("Rec")]);
        let f = Formula::Not(Box::new(member("x", r)));
        let v = check_formula(&f, &Tracked::name("Rec"));
        assert_eq!(v.len(), 1);
    }
}
