//! Evaluation and analysis errors for the calculus.

use std::fmt;

use dc_governor::{InjectedFault, SolveError};
use dc_relation::RelationError;
use dc_value::{TypeError, ValueError};

/// Errors raised during evaluation or static analysis of calculus
/// expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A relation name did not resolve in the catalog.
    UnknownRelation(String),
    /// A selector name did not resolve.
    UnknownSelector(String),
    /// A constructor name did not resolve.
    UnknownConstructor(String),
    /// A scalar parameter did not resolve.
    UnknownParam(String),
    /// A tuple variable was used without being bound.
    UnboundVariable(String),
    /// Scalar-level type error (attribute lookup, domain check).
    Type(TypeError),
    /// Scalar-level value error (arithmetic).
    Value(ValueError),
    /// Relation-level error (key violation, incompatible schemas).
    Relation(RelationError),
    /// Two values of different base types were compared.
    CrossTypeComparison {
        /// Left value rendered for the message.
        lhs: String,
        /// Right value rendered for the message.
        rhs: String,
    },
    /// A predicate position received a non-boolean, or similar.
    NotBoolean(String),
    /// Wrong number of arguments in a selector/constructor application.
    ArityMismatch {
        /// The applied name.
        name: String,
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        actual: usize,
    },
    /// §3.3: a constructor violating the positivity constraint was
    /// submitted to the checked API. Carries a description of the first
    /// offending occurrence.
    PositivityViolation(String),
    /// The fixpoint iteration detected an oscillating (period-2)
    /// iterate — only reachable through the unchecked API (the paper's
    /// `nonsense` constructor, §3.3). Resource-exhaustion divergence is
    /// [`SolveError::Diverged`] instead.
    NonConvergent {
        /// Steps executed before giving up.
        steps: usize,
    },
    /// A governed solve aborted: deadline, tuple budget, cancellation,
    /// divergence, or an isolated worker panic. Carries the structured
    /// taxonomy with diagnostics; the abort is atomic (the catalog is
    /// left at its pre-solve state).
    Solve(SolveError),
    /// An armed failpoint injected an error (deterministic
    /// fault-injection testing; see `dc_governor::fail`).
    FaultInjected {
        /// The failpoint site that fired.
        site: String,
    },
    /// Anything else, with context.
    Other(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            EvalError::UnknownSelector(n) => write!(f, "unknown selector `{n}`"),
            EvalError::UnknownConstructor(n) => write!(f, "unknown constructor `{n}`"),
            EvalError::UnknownParam(n) => write!(f, "unknown parameter `{n}`"),
            EvalError::UnboundVariable(v) => write!(f, "unbound tuple variable `{v}`"),
            EvalError::Type(e) => write!(f, "{e}"),
            EvalError::Value(e) => write!(f, "{e}"),
            EvalError::Relation(e) => write!(f, "{e}"),
            EvalError::CrossTypeComparison { lhs, rhs } => {
                write!(f, "cannot compare {lhs} with {rhs}")
            }
            EvalError::NotBoolean(ctx) => write!(f, "non-boolean in predicate position: {ctx}"),
            EvalError::ArityMismatch {
                name,
                expected,
                actual,
            } => {
                write!(f, "`{name}` expects {expected} argument(s), got {actual}")
            }
            EvalError::PositivityViolation(d) => {
                write!(f, "positivity constraint violated: {d}")
            }
            EvalError::NonConvergent { steps } => {
                write!(f, "fixpoint iteration did not converge after {steps} steps")
            }
            EvalError::Solve(e) => write!(f, "{e}"),
            EvalError::FaultInjected { site } => {
                write!(f, "injected fault at failpoint `{site}`")
            }
            EvalError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<TypeError> for EvalError {
    fn from(e: TypeError) -> Self {
        EvalError::Type(e)
    }
}

impl From<ValueError> for EvalError {
    fn from(e: ValueError) -> Self {
        EvalError::Value(e)
    }
}

impl From<RelationError> for EvalError {
    fn from(e: RelationError) -> Self {
        EvalError::Relation(e)
    }
}

impl From<SolveError> for EvalError {
    fn from(e: SolveError) -> Self {
        EvalError::Solve(e)
    }
}

impl From<InjectedFault> for EvalError {
    fn from(e: InjectedFault) -> Self {
        EvalError::FaultInjected {
            site: e.site.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EvalError::UnknownRelation("R".into())
            .to_string()
            .contains("`R`"));
        assert!(EvalError::NonConvergent { steps: 7 }
            .to_string()
            .contains('7'));
        assert!(EvalError::ArityMismatch {
            name: "ahead".into(),
            expected: 1,
            actual: 2
        }
        .to_string()
        .contains("ahead"));
    }

    #[test]
    fn conversions() {
        let e: EvalError = TypeError::ArityMismatch {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(matches!(e, EvalError::Type(_)));
        let e: EvalError = ValueError::DivisionByZero.into();
        assert!(matches!(e, EvalError::Value(_)));
    }
}
