//! Tokenizer for the DBPL fragment.

use crate::error::LangError;

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier (case-sensitive).
    Ident(String),
    /// Integer literal (`42`).
    Int(i64),
    /// Cardinal literal (`42C`).
    Card(u64),
    /// String literal.
    Str(String),
    /// Keyword (uppercase reserved words).
    Kw(Kw),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `#`
    Ne,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `...`
    Ellipsis,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    Type,
    Var,
    Selector,
    Constructor,
    For,
    Begin,
    End,
    Each,
    In,
    Some,
    All,
    And,
    Or,
    Not,
    True,
    False,
    Of,
    Record,
    Relation,
    Range,
    Div,
    Mod,
    Integer,
    Cardinal,
    Boolean,
    StringKw,
    Insert,
    Query,
}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "TYPE" => Kw::Type,
        "VAR" => Kw::Var,
        "SELECTOR" => Kw::Selector,
        "CONSTRUCTOR" => Kw::Constructor,
        "FOR" => Kw::For,
        "BEGIN" => Kw::Begin,
        "END" => Kw::End,
        "EACH" => Kw::Each,
        "IN" => Kw::In,
        "SOME" => Kw::Some,
        "ALL" => Kw::All,
        "AND" => Kw::And,
        "OR" => Kw::Or,
        "NOT" => Kw::Not,
        "TRUE" => Kw::True,
        "FALSE" => Kw::False,
        "OF" => Kw::Of,
        "RECORD" => Kw::Record,
        "RELATION" => Kw::Relation,
        "RANGE" => Kw::Range,
        "DIV" => Kw::Div,
        "MOD" => Kw::Mod,
        "INTEGER" => Kw::Integer,
        "CARDINAL" => Kw::Cardinal,
        "BOOLEAN" => Kw::Boolean,
        "STRING" => Kw::StringKw,
        "INSERT" => Kw::Insert,
        "QUERY" => Kw::Query,
        _ => return None,
    })
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Tokenize a source string. Comments run `(*` … `*)` (MODULA-2 style)
/// and `--` to end of line.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LangError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        match c {
            c if c.is_whitespace() => {
                bump!();
            }
            '(' if i + 1 < chars.len() && chars[i + 1] == '*' => {
                // Block comment.
                bump!();
                bump!();
                loop {
                    if i + 1 >= chars.len() {
                        return Err(LangError::Lex {
                            line: tline,
                            col: tcol,
                            msg: "unterminated comment".into(),
                        });
                    }
                    if chars[i] == '*' && chars[i + 1] == ')' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            '-' if i + 1 < chars.len() && chars[i + 1] == '-' => {
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(LangError::Lex {
                            line: tline,
                            col: tcol,
                            msg: "unterminated string".into(),
                        });
                    }
                    if chars[i] == '"' {
                        bump!();
                        break;
                    }
                    s.push(chars[i]);
                    bump!();
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    n = n
                        .checked_mul(10)
                        .and_then(|x| x.checked_add((chars[i] as u8 - b'0') as i64))
                        .ok_or(LangError::Lex {
                            line: tline,
                            col: tcol,
                            msg: "integer literal overflow".into(),
                        })?;
                    bump!();
                }
                if i < chars.len() && chars[i] == 'C' {
                    bump!();
                    out.push(Token {
                        tok: Tok::Card(n as u64),
                        line: tline,
                        col: tcol,
                    });
                } else {
                    out.push(Token {
                        tok: Tok::Int(n),
                        line: tline,
                        col: tcol,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    bump!();
                }
                let tok = match keyword(&s) {
                    Some(kw) => Tok::Kw(kw),
                    None => Tok::Ident(s),
                };
                out.push(Token {
                    tok,
                    line: tline,
                    col: tcol,
                });
            }
            _ => {
                let tok = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '<' => {
                        if i + 1 < chars.len() && chars[i + 1] == '=' {
                            bump!();
                            Tok::Le
                        } else {
                            Tok::Lt
                        }
                    }
                    '>' => {
                        if i + 1 < chars.len() && chars[i + 1] == '=' {
                            bump!();
                            Tok::Ge
                        } else {
                            Tok::Gt
                        }
                    }
                    '=' => Tok::Eq,
                    '#' => Tok::Ne,
                    ',' => Tok::Comma,
                    ';' => Tok::Semi,
                    ':' => Tok::Colon,
                    '.' => {
                        if i + 2 < chars.len() && chars[i + 1] == '.' && chars[i + 2] == '.' {
                            bump!();
                            bump!();
                            Tok::Ellipsis
                        } else if i + 1 < chars.len() && chars[i + 1] == '.' {
                            bump!();
                            Tok::DotDot
                        } else {
                            Tok::Dot
                        }
                    }
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    other => {
                        return Err(LangError::Lex {
                            line: tline,
                            col: tcol,
                            msg: format!("unexpected character `{other}`"),
                        })
                    }
                };
                bump!();
                out.push(Token {
                    tok,
                    line: tline,
                    col: tcol,
                });
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let t = toks("TYPE foo = STRING;");
        assert_eq!(
            t,
            vec![
                Tok::Kw(Kw::Type),
                Tok::Ident("foo".into()),
                Tok::Eq,
                Tok::Kw(Kw::StringKw),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn punctuation_families() {
        assert_eq!(
            toks(". .. ... < <= > >= = #"),
            vec![
                Tok::Dot,
                Tok::DotDot,
                Tok::Ellipsis,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Eq,
                Tok::Ne,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(
            toks("42 7C \"table\""),
            vec![
                Tok::Int(42),
                Tok::Card(7),
                Tok::Str("table".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = toks("a (* block\ncomment *) b -- line comment\nc");
        assert_eq!(
            t,
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let tokens = tokenize("a\n  b").unwrap();
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].col), (2, 3));
    }

    #[test]
    fn errors() {
        assert!(matches!(tokenize("\"open"), Err(LangError::Lex { .. })));
        assert!(matches!(tokenize("(* open"), Err(LangError::Lex { .. })));
        assert!(matches!(tokenize("?"), Err(LangError::Lex { .. })));
    }

    #[test]
    fn paren_not_comment() {
        assert_eq!(
            toks("(a)"),
            vec![Tok::LParen, Tok::Ident("a".into()), Tok::RParen, Tok::Eof]
        );
    }
}
