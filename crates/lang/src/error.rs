//! Errors of the DBPL front end.

use std::fmt;

use dc_core::CoreError;

/// Errors raised while lexing, parsing, or executing DBPL scripts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Lexical error with source position.
    Lex {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Description.
        msg: String,
    },
    /// Parse error with source position.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Description.
        msg: String,
    },
    /// A type name did not resolve.
    UnknownType(String),
    /// Engine-level failure during lowering/execution.
    Core(CoreError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { line, col, msg } => write!(f, "lex error at {line}:{col}: {msg}"),
            LangError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            LangError::UnknownType(n) => write!(f, "unknown type `{n}`"),
            LangError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LangError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LangError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for LangError {
    fn from(e: CoreError) -> Self {
        LangError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = LangError::Parse {
            line: 3,
            col: 7,
            msg: "expected `;`".into(),
        };
        assert!(e.to_string().contains("3:7"));
        assert!(LangError::UnknownType("foo".into())
            .to_string()
            .contains("foo"));
    }
}
