//! DBPL surface syntax: lexer, parser, and lowering to the engine.
//!
//! Lets programs be written in the paper's concrete syntax (§2–§3):
//!
//! ```text
//! TYPE parttype   = STRING;
//! TYPE infrontrel = RELATION ... OF RECORD front, back: parttype END;
//! VAR Infront: infrontrel;
//!
//! SELECTOR hidden_by (Obj: parttype) FOR Rel: infrontrel;
//! BEGIN EACH r IN Rel: r.front = Obj END hidden_by;
//!
//! CONSTRUCTOR ahead FOR Rel: infrontrel (): aheadrel;
//! BEGIN EACH r IN Rel: TRUE,
//!       <f.front, b.tail> OF EACH f IN Rel, EACH b IN Rel{ahead()}:
//!           f.back = b.head
//! END ahead;
//!
//! INSERT Infront <"vase", "table">;
//! QUERY {EACH a IN Infront{ahead()}: a.head = "vase"};
//! ```
//!
//! Statements: `TYPE`, `VAR`, `SELECTOR`, `CONSTRUCTOR`, `INSERT`,
//! `QUERY`. Consecutive `CONSTRUCTOR` statements are registered as one
//! mutually recursive group (§3.1's `ahead`/`above`).

pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod stmt;

pub use error::LangError;
pub use lower::{run_script, QueryResult};
