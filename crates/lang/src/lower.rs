//! Lowering: execute parsed DBPL scripts against a
//! [`dc_core::Database`].

use dc_calculus::ast::SelectorDef;
use dc_core::{Constructor, Database};
use dc_relation::Relation;
use dc_value::{Attribute, Domain, FxHashMap, Schema, Tuple, Value};

use crate::error::LangError;
use crate::parser::parse_script;
use crate::stmt::{Stmt, TypeExpr};

/// What a type name denotes.
#[derive(Debug, Clone)]
enum Denot {
    Scalar(Domain),
    Rel(Schema),
}

/// The result of one `QUERY` statement.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The query's source rendering.
    pub text: String,
    /// The answer relation.
    pub relation: Relation,
}

/// Parse and execute a DBPL script against a database; returns one
/// [`QueryResult`] per `QUERY` statement.
///
/// Consecutive `CONSTRUCTOR` statements form one definition group, so
/// mutually recursive constructors (§3.1's `ahead`/`above`) can be
/// written naturally, one after the other.
pub fn run_script(db: &mut Database, src: &str) -> Result<Vec<QueryResult>, LangError> {
    let stmts = parse_script(src)?;
    let mut types: FxHashMap<String, Denot> = FxHashMap::default();
    let mut pending: Vec<Constructor> = Vec::new();
    let mut results = Vec::new();

    fn flush(db: &mut Database, pending: &mut Vec<Constructor>) -> Result<(), LangError> {
        if pending.is_empty() {
            return Ok(());
        }
        let group = std::mem::take(pending);
        db.define_constructors(group)?;
        Ok(())
    }

    for stmt in stmts {
        if !matches!(stmt, Stmt::ConstructorDef { .. }) {
            flush(db, &mut pending)?;
        }
        match stmt {
            Stmt::TypeDef { name, def } => {
                let d = resolve_type(&def, &types)?;
                types.insert(name, d);
            }
            Stmt::VarDecl { name, type_name } => {
                let schema = rel_schema(&type_name, &types)?;
                db.create_relation(name, schema)?;
            }
            Stmt::SelectorDef {
                name,
                params,
                for_var: _,
                for_type,
                element_var,
                predicate,
            } => {
                let for_schema = rel_schema(&for_type, &types)?;
                let mut pdomains = Vec::with_capacity(params.len());
                for (pname, pty) in params {
                    pdomains.push((pname, scalar_domain(&pty, &types)?));
                }
                db.define_selector(
                    SelectorDef {
                        name,
                        element_var,
                        params: pdomains,
                        predicate,
                    },
                    for_schema,
                )?;
            }
            Stmt::ConstructorDef {
                name,
                base_var,
                base_type,
                rel_params,
                scalar_params,
                result_type,
                branches,
            } => {
                let base_schema = rel_schema(&base_type, &types)?;
                let result = rel_schema(&result_type, &types)?;
                let mut rps = Vec::with_capacity(rel_params.len());
                for (pname, tname) in rel_params {
                    rps.push((pname, rel_schema(&tname, &types)?));
                }
                let mut sps = Vec::with_capacity(scalar_params.len());
                for (pname, pty) in scalar_params {
                    sps.push((pname, scalar_domain(&pty, &types)?));
                }
                pending.push(Constructor {
                    name,
                    base_param: (base_var, base_schema),
                    rel_params: rps,
                    scalar_params: sps,
                    result,
                    body: dc_calculus::ast::SetFormer { branches },
                });
            }
            Stmt::Insert { relation, values } => {
                let schema = db.relation_ref(&relation)?.schema().clone();
                let coerced = coerce_tuple(values, &schema)?;
                db.insert(&relation, coerced)?;
            }
            Stmt::Query { expr, text } => {
                let relation = db.eval(&expr)?;
                results.push(QueryResult { text, relation });
            }
        }
    }
    flush(db, &mut pending)?;
    Ok(results)
}

fn resolve_type(def: &TypeExpr, types: &FxHashMap<String, Denot>) -> Result<Denot, LangError> {
    Ok(match def {
        TypeExpr::Str => Denot::Scalar(Domain::Str),
        TypeExpr::Int => Denot::Scalar(Domain::Int),
        TypeExpr::Card => Denot::Scalar(Domain::Card),
        TypeExpr::Bool => Denot::Scalar(Domain::Bool),
        TypeExpr::Range(lo, hi) => Denot::Scalar(Domain::IntRange(*lo, *hi)),
        TypeExpr::Named(n) => types
            .get(n)
            .cloned()
            .ok_or_else(|| LangError::UnknownType(n.clone()))?,
        TypeExpr::Relation { key, fields } => {
            let mut attrs = Vec::with_capacity(fields.len());
            for (fname, fty) in fields {
                attrs.push(Attribute::new(fname.clone(), scalar_domain(fty, types)?));
            }
            let schema = if key.is_empty() {
                Schema::new(attrs)
            } else {
                let keys: Vec<&str> = key.iter().map(String::as_str).collect();
                Schema::with_key(attrs, &keys)
                    .map_err(|e| LangError::Core(dc_core::CoreError::Relation(e.into())))?
            };
            Denot::Rel(schema)
        }
    })
}

fn scalar_domain(ty: &TypeExpr, types: &FxHashMap<String, Denot>) -> Result<Domain, LangError> {
    match resolve_type(ty, types)? {
        Denot::Scalar(d) => Ok(d),
        Denot::Rel(_) => Err(LangError::UnknownType(format!(
            "expected a scalar type, found a relation type ({ty:?})"
        ))),
    }
}

fn rel_schema(name: &str, types: &FxHashMap<String, Denot>) -> Result<Schema, LangError> {
    match types.get(name) {
        Some(Denot::Rel(s)) => Ok(s.clone()),
        Some(Denot::Scalar(_)) => Err(LangError::UnknownType(format!(
            "`{name}` is a scalar type where a relation type is required"
        ))),
        None => Err(LangError::UnknownType(name.to_string())),
    }
}

/// Coerce literal values to the target schema's base domains
/// (specifically `Int` literals into `CARDINAL` attributes, since the
/// lexer defaults bare integers to `INTEGER`).
fn coerce_tuple(values: Vec<Value>, schema: &Schema) -> Result<Tuple, LangError> {
    let mut out = Vec::with_capacity(values.len());
    for (i, v) in values.into_iter().enumerate() {
        let target = schema.attributes().get(i).map(|a| a.domain.base());
        let coerced = match (&v, target) {
            (Value::Int(n), Some(Domain::Card)) if *n >= 0 => Value::Card(*n as u64),
            _ => v,
        };
        out.push(coerced);
    }
    Ok(Tuple::new(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_value::tuple;

    /// The full CAD example of the paper, in DBPL syntax.
    const SCENE: &str = r#"
        TYPE parttype   = STRING;
        TYPE infrontrel = RELATION ... OF RECORD front, back: parttype END;
        TYPE aheadrel   = RELATION ... OF RECORD head, tail: parttype END;

        VAR Infront: infrontrel;

        SELECTOR hidden_by (Obj: parttype) FOR Rel: infrontrel ();
        BEGIN EACH r IN Rel: r.front = Obj END hidden_by;

        CONSTRUCTOR ahead FOR Rel: infrontrel (): aheadrel;
        BEGIN EACH r IN Rel: TRUE,
              <f.front, b.tail> OF EACH f IN Rel,
                EACH b IN Rel{ahead()}: f.back = b.head
        END ahead;

        INSERT Infront <"vase",  "table">;
        INSERT Infront <"table", "chair">;
        INSERT Infront <"chair", "wall">;
    "#;

    #[test]
    fn full_scene_script() {
        let mut db = Database::new();
        run_script(&mut db, SCENE).unwrap();
        let results = run_script(
            &mut db,
            r#"QUERY Infront{ahead()};
               QUERY Infront[hidden_by("table")]{ahead()};"#,
        )
        .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].relation.len(), 6);
        assert!(results[0].relation.contains(&tuple!["vase", "wall"]));
        assert_eq!(results[1].relation.len(), 1); // chain from "table" selected edges
    }

    #[test]
    fn mutual_recursion_as_consecutive_statements() {
        let mut db = Database::new();
        run_script(
            &mut db,
            r#"
            TYPE parttype   = STRING;
            TYPE infrontrel = RELATION ... OF RECORD front, back: parttype END;
            TYPE ontoprel   = RELATION ... OF RECORD top, base: parttype END;
            TYPE aheadrel   = RELATION ... OF RECORD head, tail: parttype END;
            TYPE aboverel   = RELATION ... OF RECORD high, low: parttype END;
            VAR Infront: infrontrel;
            VAR Ontop: ontoprel;

            CONSTRUCTOR ahead FOR Rel: infrontrel (Ontop: ontoprel): aheadrel;
            BEGIN EACH r IN Rel: TRUE,
                  <r.front, ah.tail> OF EACH r IN Rel,
                    EACH ah IN Rel{ahead(Ontop)}: r.back = ah.head,
                  <r.front, ab.low> OF EACH r IN Rel,
                    EACH ab IN Ontop{above(Rel)}: r.back = ab.high
            END ahead;

            CONSTRUCTOR above FOR Rel: ontoprel (Infront: infrontrel): aboverel;
            BEGIN EACH r IN Rel: TRUE,
                  <r.top, ab.low> OF EACH r IN Rel,
                    EACH ab IN Rel{above(Infront)}: r.base = ab.high,
                  <r.top, ah.tail> OF EACH r IN Rel,
                    EACH ah IN Infront{ahead(Rel)}: r.base = ah.head
            END above;

            INSERT Infront <"table", "chair">;
            INSERT Ontop <"vase", "table">;
        "#,
        )
        .unwrap();
        let results = run_script(&mut db, "QUERY Ontop{above(Infront)};").unwrap();
        assert!(results[0].relation.contains(&tuple!["vase", "chair"]));
    }

    #[test]
    fn key_constraint_from_script() {
        let mut db = Database::new();
        let err = run_script(
            &mut db,
            r#"
            TYPE objectrel = RELATION part OF RECORD part: STRING; weight: INTEGER END;
            VAR Objects: objectrel;
            INSERT Objects <"bolt", 5>;
            INSERT Objects <"bolt", 9>;
        "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("key violation"));
        // First insert survived.
        assert_eq!(db.relation_ref("Objects").unwrap().len(), 1);
    }

    #[test]
    fn positivity_rejected_from_script() {
        let mut db = Database::new();
        let err = run_script(
            &mut db,
            r#"
            TYPE anyrel = RELATION ... OF RECORD x: INTEGER END;
            VAR R: anyrel;
            CONSTRUCTOR nonsense FOR Rel: anyrel (): anyrel;
            BEGIN EACH r IN Rel: NOT (r IN Rel{nonsense()})
            END nonsense;
        "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("positivity"));
    }

    #[test]
    fn cardinal_coercion_on_insert() {
        let mut db = Database::new();
        run_script(
            &mut db,
            r#"
            TYPE cardrel = RELATION ... OF RECORD number: CARDINAL END;
            VAR C: cardrel;
            INSERT C <3>;
            INSERT C <4C>;
        "#,
        )
        .unwrap();
        let c = db.relation_ref("C").unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.contains(&tuple![3u64]));
    }

    #[test]
    fn range_types_enforced() {
        let mut db = Database::new();
        let err = run_script(
            &mut db,
            r#"
            TYPE partid = RANGE 1..100;
            TYPE prel = RELATION ... OF RECORD id: partid END;
            VAR P: prel;
            INSERT P <200>;
        "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("range"));
    }

    #[test]
    fn unknown_type_errors() {
        let mut db = Database::new();
        let err = run_script(&mut db, "VAR X: missing;").unwrap_err();
        assert!(matches!(err, LangError::UnknownType(_)));
        let err2 = run_script(&mut db, "TYPE t = STRING;\nVAR X: t;").unwrap_err();
        assert!(err2.to_string().contains("scalar type"));
    }

    #[test]
    fn selector_params_typed_from_script() {
        let mut db = Database::new();
        run_script(&mut db, SCENE).unwrap();
        // hidden_by expects a STRING argument.
        let err = run_script(&mut db, "QUERY Infront[hidden_by(3)]{ahead()};").unwrap_err();
        assert!(matches!(err, LangError::Core(_)));
    }
}
