//! Statement-level AST of DBPL scripts (expressions reuse
//! `dc_calculus::ast`).

use dc_calculus::ast::{Formula, RangeExpr};
use dc_value::Value;

/// A type expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `STRING`
    Str,
    /// `INTEGER`
    Int,
    /// `CARDINAL`
    Card,
    /// `BOOLEAN`
    Bool,
    /// `RANGE lo..hi`
    Range(i64, i64),
    /// Reference to a named type.
    Named(String),
    /// `RELATION key OF RECORD fields END`; `key` empty for
    /// `RELATION ... OF`.
    Relation {
        /// Key attribute names (empty ⇒ whole-tuple key).
        key: Vec<String>,
        /// Fields: attribute name and its (scalar) type.
        fields: Vec<(String, TypeExpr)>,
    },
}

/// One branch of a parsed set former / constructor body.
pub type ParsedBranch = dc_calculus::ast::Branch;

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `TYPE name = type;`
    TypeDef {
        /// Type name.
        name: String,
        /// Definition.
        def: TypeExpr,
    },
    /// `VAR name: reltype;`
    VarDecl {
        /// Relation variable name.
        name: String,
        /// Relation type name.
        type_name: String,
    },
    /// `SELECTOR name (params) FOR var: reltype; BEGIN EACH v IN var:
    /// pred END name;`
    SelectorDef {
        /// Selector name.
        name: String,
        /// Scalar parameters: name and type.
        params: Vec<(String, TypeExpr)>,
        /// The FOR variable (scopes the body).
        for_var: String,
        /// FOR relation type name.
        for_type: String,
        /// Element variable of the body.
        element_var: String,
        /// Body predicate.
        predicate: Formula,
    },
    /// `CONSTRUCTOR name FOR var: reltype (params): result; BEGIN
    /// branches END name;`
    ConstructorDef {
        /// Constructor name.
        name: String,
        /// Formal base name (`Rel`).
        base_var: String,
        /// Base relation type name.
        base_type: String,
        /// Relation parameters: name and relation type name.
        rel_params: Vec<(String, String)>,
        /// Scalar parameters: name and type.
        scalar_params: Vec<(String, TypeExpr)>,
        /// Result relation type name.
        result_type: String,
        /// Body branches.
        branches: Vec<ParsedBranch>,
    },
    /// `INSERT name <v1, …, vk>;`
    Insert {
        /// Target relation.
        relation: String,
        /// Literal tuple.
        values: Vec<Value>,
    },
    /// `QUERY expr;`
    Query {
        /// The query expression.
        expr: RangeExpr,
        /// Source text (for result labelling).
        text: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_expr_shapes() {
        let r = TypeExpr::Relation {
            key: vec![],
            fields: vec![("front".into(), TypeExpr::Named("parttype".into()))],
        };
        assert!(matches!(r, TypeExpr::Relation { .. }));
        assert_eq!(TypeExpr::Range(1, 100), TypeExpr::Range(1, 100));
    }
}
