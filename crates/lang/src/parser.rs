//! Recursive-descent parser for DBPL scripts.

use dc_calculus::ast::{ArithOp, Branch, CmpOp, Formula, RangeExpr, ScalarExpr, SetFormer, Target};
use dc_value::Value;

use crate::error::LangError;
use crate::lexer::{tokenize, Kw, Tok, Token};
use crate::stmt::{Stmt, TypeExpr};

/// Parse a whole script.
pub fn parse_script(src: &str) -> Result<Vec<Stmt>, LangError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        src,
    };
    let mut out = Vec::new();
    while !p.at(Tok::Eof) {
        out.push(p.statement()?);
    }
    Ok(out)
}

/// Parse a single query expression (no trailing `;`).
pub fn parse_expr(src: &str) -> Result<RangeExpr, LangError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        src,
    };
    let e = p.range_expr()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

struct Parser<'s> {
    tokens: Vec<Token>,
    pos: usize,
    #[allow(dead_code)]
    src: &'s str,
}

impl Parser<'_> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_at(&self, off: usize) -> &Tok {
        let i = (self.pos + off).min(self.tokens.len() - 1);
        &self.tokens[i].tok
    }

    fn at(&self, t: Tok) -> bool {
        *self.peek() == t
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LangError> {
        let t = &self.tokens[self.pos];
        Err(LangError::Parse {
            line: t.line,
            col: t.col,
            msg: msg.into(),
        })
    }

    fn expect(&mut self, t: Tok) -> Result<(), LangError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> Result<(), LangError> {
        self.expect(Tok::Kw(kw))
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    // --------------------------------------------------------------
    // Statements
    // --------------------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, LangError> {
        match self.peek().clone() {
            Tok::Kw(Kw::Type) => self.type_def(),
            Tok::Kw(Kw::Var) => self.var_decl(),
            Tok::Kw(Kw::Selector) => self.selector_def(),
            Tok::Kw(Kw::Constructor) => self.constructor_def(),
            Tok::Kw(Kw::Insert) => self.insert_stmt(),
            Tok::Kw(Kw::Query) => self.query_stmt(),
            other => self.err(format!("expected a statement, found {other:?}")),
        }
    }

    fn type_def(&mut self) -> Result<Stmt, LangError> {
        self.expect_kw(Kw::Type)?;
        let name = self.ident()?;
        self.expect(Tok::Eq)?;
        let def = self.type_expr()?;
        self.expect(Tok::Semi)?;
        Ok(Stmt::TypeDef { name, def })
    }

    fn type_expr(&mut self) -> Result<TypeExpr, LangError> {
        match self.peek().clone() {
            Tok::Kw(Kw::StringKw) => {
                self.bump();
                Ok(TypeExpr::Str)
            }
            Tok::Kw(Kw::Integer) => {
                self.bump();
                Ok(TypeExpr::Int)
            }
            Tok::Kw(Kw::Cardinal) => {
                self.bump();
                Ok(TypeExpr::Card)
            }
            Tok::Kw(Kw::Boolean) => {
                self.bump();
                Ok(TypeExpr::Bool)
            }
            Tok::Kw(Kw::Range) => {
                self.bump();
                let lo = self.int_lit()?;
                self.expect(Tok::DotDot)?;
                let hi = self.int_lit()?;
                Ok(TypeExpr::Range(lo, hi))
            }
            Tok::Kw(Kw::Relation) => {
                self.bump();
                let key = if self.at(Tok::Ellipsis) {
                    self.bump();
                    Vec::new()
                } else {
                    let mut k = vec![self.ident()?];
                    while self.at(Tok::Comma) {
                        self.bump();
                        k.push(self.ident()?);
                    }
                    k
                };
                self.expect_kw(Kw::Of)?;
                self.expect_kw(Kw::Record)?;
                let mut fields = Vec::new();
                loop {
                    let mut names = vec![self.ident()?];
                    while self.at(Tok::Comma) {
                        self.bump();
                        names.push(self.ident()?);
                    }
                    self.expect(Tok::Colon)?;
                    let ty = self.type_expr()?;
                    for n in names {
                        fields.push((n, ty.clone()));
                    }
                    if self.at(Tok::Semi) {
                        self.bump();
                        if self.at(Tok::Kw(Kw::End)) {
                            break;
                        }
                        continue;
                    }
                    break;
                }
                self.expect_kw(Kw::End)?;
                Ok(TypeExpr::Relation { key, fields })
            }
            Tok::Ident(n) => {
                self.bump();
                Ok(TypeExpr::Named(n))
            }
            other => self.err(format!("expected a type, found {other:?}")),
        }
    }

    fn int_lit(&mut self) -> Result<i64, LangError> {
        let neg = if self.at(Tok::Minus) {
            self.bump();
            true
        } else {
            false
        };
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(if neg { -n } else { n })
            }
            other => self.err(format!("expected an integer, found {other:?}")),
        }
    }

    fn var_decl(&mut self) -> Result<Stmt, LangError> {
        self.expect_kw(Kw::Var)?;
        let name = self.ident()?;
        self.expect(Tok::Colon)?;
        let type_name = self.ident()?;
        self.expect(Tok::Semi)?;
        Ok(Stmt::VarDecl { name, type_name })
    }

    /// `SELECTOR name (p: ty; …) FOR var: reltype;
    ///  BEGIN EACH v IN var: pred END name;`
    fn selector_def(&mut self) -> Result<Stmt, LangError> {
        self.expect_kw(Kw::Selector)?;
        let name = self.ident()?;
        let mut params = Vec::new();
        if self.at(Tok::LParen) {
            self.bump();
            while !self.at(Tok::RParen) {
                let pname = self.ident()?;
                self.expect(Tok::Colon)?;
                let ty = self.type_expr()?;
                params.push((pname, ty));
                if self.at(Tok::Semi) || self.at(Tok::Comma) {
                    self.bump();
                }
            }
            self.expect(Tok::RParen)?;
        }
        self.expect_kw(Kw::For)?;
        let for_var = self.ident()?;
        self.expect(Tok::Colon)?;
        let for_type = self.ident()?;
        // Optional empty parameter parens after the type (paper writes
        // `FOR Rel: infrontrel()`).
        if self.at(Tok::LParen) {
            self.bump();
            self.expect(Tok::RParen)?;
        }
        self.expect(Tok::Semi)?;
        self.expect_kw(Kw::Begin)?;
        self.expect_kw(Kw::Each)?;
        let element_var = self.ident()?;
        self.expect_kw(Kw::In)?;
        let scope = self.ident()?;
        if scope != for_var {
            return self.err(format!(
                "selector body must range over `{for_var}`, found `{scope}`"
            ));
        }
        self.expect(Tok::Colon)?;
        let predicate = self.formula()?;
        self.expect_kw(Kw::End)?;
        let end_name = self.ident()?;
        if end_name != name {
            return self.err(format!("END `{end_name}` does not match SELECTOR `{name}`"));
        }
        self.expect(Tok::Semi)?;
        Ok(Stmt::SelectorDef {
            name,
            params,
            for_var,
            for_type,
            element_var,
            predicate,
        })
    }

    /// `CONSTRUCTOR name FOR var: reltype (P1: relty; k: INTEGER): result;
    ///  BEGIN branch, branch END name;`
    fn constructor_def(&mut self) -> Result<Stmt, LangError> {
        self.expect_kw(Kw::Constructor)?;
        let name = self.ident()?;
        self.expect_kw(Kw::For)?;
        let base_var = self.ident()?;
        self.expect(Tok::Colon)?;
        let base_type = self.ident()?;
        let mut rel_params = Vec::new();
        let mut scalar_params = Vec::new();
        if self.at(Tok::LParen) {
            self.bump();
            while !self.at(Tok::RParen) {
                let pname = self.ident()?;
                self.expect(Tok::Colon)?;
                let ty = self.type_expr()?;
                match ty {
                    TypeExpr::Named(t) => rel_params.push((pname, t)),
                    scalar => scalar_params.push((pname, scalar)),
                }
                if self.at(Tok::Semi) || self.at(Tok::Comma) {
                    self.bump();
                }
            }
            self.expect(Tok::RParen)?;
        }
        self.expect(Tok::Colon)?;
        let result_type = self.ident()?;
        self.expect(Tok::Semi)?;
        self.expect_kw(Kw::Begin)?;
        let mut branches = vec![self.branch()?];
        while self.at(Tok::Comma) {
            self.bump();
            branches.push(self.branch()?);
        }
        self.expect_kw(Kw::End)?;
        let end_name = self.ident()?;
        if end_name != name {
            return self.err(format!(
                "END `{end_name}` does not match CONSTRUCTOR `{name}`"
            ));
        }
        self.expect(Tok::Semi)?;
        Ok(Stmt::ConstructorDef {
            name,
            base_var,
            base_type,
            rel_params,
            scalar_params,
            result_type,
            branches,
        })
    }

    fn insert_stmt(&mut self) -> Result<Stmt, LangError> {
        self.expect_kw(Kw::Insert)?;
        let relation = self.ident()?;
        self.expect(Tok::Lt)?;
        let mut values = vec![self.literal()?];
        while self.at(Tok::Comma) {
            self.bump();
            values.push(self.literal()?);
        }
        self.expect(Tok::Gt)?;
        self.expect(Tok::Semi)?;
        Ok(Stmt::Insert { relation, values })
    }

    fn literal(&mut self) -> Result<Value, LangError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Value::Int(n))
            }
            Tok::Card(n) => {
                self.bump();
                Ok(Value::Card(n))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Value::str(s))
            }
            Tok::Kw(Kw::True) => {
                self.bump();
                Ok(Value::Bool(true))
            }
            Tok::Kw(Kw::False) => {
                self.bump();
                Ok(Value::Bool(false))
            }
            Tok::Minus => {
                self.bump();
                match self.peek().clone() {
                    Tok::Int(n) => {
                        self.bump();
                        Ok(Value::Int(-n))
                    }
                    other => self.err(format!("expected an integer, found {other:?}")),
                }
            }
            other => self.err(format!("expected a literal, found {other:?}")),
        }
    }

    fn query_stmt(&mut self) -> Result<Stmt, LangError> {
        self.expect_kw(Kw::Query)?;
        let expr = self.range_expr()?;
        self.expect(Tok::Semi)?;
        let text = expr.to_string();
        Ok(Stmt::Query { expr, text })
    }

    // --------------------------------------------------------------
    // Expressions
    // --------------------------------------------------------------

    /// range := primary suffix*
    /// suffix := `[` name `(` scalar-args `)` `]`
    ///         | `{` name `(` range-args [`;` scalar-args] `)` `}`
    pub(crate) fn range_expr(&mut self) -> Result<RangeExpr, LangError> {
        let mut e = self.range_primary()?;
        loop {
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let name = self.ident()?;
                    let mut args = Vec::new();
                    if self.at(Tok::LParen) {
                        self.bump();
                        while !self.at(Tok::RParen) {
                            args.push(self.scalar_expr()?);
                            if self.at(Tok::Comma) {
                                self.bump();
                            }
                        }
                        self.expect(Tok::RParen)?;
                    }
                    self.expect(Tok::RBracket)?;
                    e = RangeExpr::Selected {
                        base: Box::new(e),
                        selector: name,
                        args,
                    };
                }
                // Constructor application: `{` immediately followed by
                // an identifier (a set former starts with EACH or `<`).
                Tok::LBrace if matches!(self.peek_at(1), Tok::Ident(_)) => {
                    self.bump();
                    let name = self.ident()?;
                    let mut args = Vec::new();
                    let mut scalar_args = Vec::new();
                    if self.at(Tok::LParen) {
                        self.bump();
                        while !self.at(Tok::RParen) && !self.at(Tok::Semi) {
                            args.push(self.range_expr()?);
                            if self.at(Tok::Comma) {
                                self.bump();
                            }
                        }
                        if self.at(Tok::Semi) {
                            self.bump();
                            while !self.at(Tok::RParen) {
                                scalar_args.push(self.scalar_expr()?);
                                if self.at(Tok::Comma) {
                                    self.bump();
                                }
                            }
                        }
                        self.expect(Tok::RParen)?;
                    }
                    self.expect(Tok::RBrace)?;
                    e = RangeExpr::Constructed {
                        base: Box::new(e),
                        constructor: name,
                        args,
                        scalar_args,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn range_primary(&mut self) -> Result<RangeExpr, LangError> {
        match self.peek().clone() {
            Tok::Ident(n) => {
                self.bump();
                Ok(RangeExpr::Rel(n))
            }
            Tok::LBrace => {
                self.bump();
                let mut branches = vec![self.branch()?];
                while self.at(Tok::Comma) {
                    self.bump();
                    branches.push(self.branch()?);
                }
                self.expect(Tok::RBrace)?;
                Ok(RangeExpr::SetFormer(SetFormer { branches }))
            }
            other => self.err(format!("expected a relation expression, found {other:?}")),
        }
    }

    /// branch := [`<` scalar-list `>` OF] bindings `:` formula
    fn branch(&mut self) -> Result<Branch, LangError> {
        let target = if self.at(Tok::Lt) {
            self.bump();
            let mut exprs = vec![self.scalar_expr()?];
            while self.at(Tok::Comma) {
                self.bump();
                exprs.push(self.scalar_expr()?);
            }
            self.expect(Tok::Gt)?;
            self.expect_kw(Kw::Of)?;
            Some(exprs)
        } else {
            None
        };
        let bindings = self.bindings()?;
        self.expect(Tok::Colon)?;
        let predicate = self.formula()?;
        match target {
            Some(exprs) => Ok(Branch {
                target: Target::Tuple(exprs),
                bindings,
                predicate,
            }),
            None => {
                if bindings.len() != 1 {
                    return self.err("a branch without a target must bind exactly one variable");
                }
                let var = bindings[0].0.clone();
                Ok(Branch {
                    target: Target::Var(var),
                    bindings,
                    predicate,
                })
            }
        }
    }

    /// bindings := EACH var-list IN range (`,` EACH var-list IN range)*
    fn bindings(&mut self) -> Result<Vec<(String, RangeExpr)>, LangError> {
        let mut out = Vec::new();
        loop {
            self.expect_kw(Kw::Each)?;
            let mut vars = vec![self.ident()?];
            while self.at(Tok::Comma)
                && matches!(self.peek_at(1), Tok::Ident(_))
                && *self.peek_at(2) != Tok::Kw(Kw::In)
            {
                // `EACH f, b IN Rel` sugar — but `,(Ident) IN` would be
                // the next binding's var... disambiguate: a var-list
                // continues only if the token after the ident is `,` or
                // `IN`.
                self.bump();
                vars.push(self.ident()?);
            }
            // Handle the final var before IN in the sugar form:
            if self.at(Tok::Comma)
                && matches!(self.peek_at(1), Tok::Ident(_))
                && *self.peek_at(2) == Tok::Kw(Kw::In)
            {
                // ambiguous: `, x IN` could be sugar continuation or a
                // new binding with omitted EACH — DBPL has no omitted
                // EACH, so treat as sugar.
                self.bump();
                vars.push(self.ident()?);
            }
            self.expect_kw(Kw::In)?;
            let range = self.range_expr()?;
            for v in vars {
                out.push((v, range.clone()));
            }
            if self.at(Tok::Comma) && *self.peek_at(1) == Tok::Kw(Kw::Each) {
                self.bump();
                continue;
            }
            break;
        }
        Ok(out)
    }

    // Formula grammar: or_f := and_f (OR and_f)*
    //                  and_f := not_f (AND not_f)*
    //                  not_f := NOT not_f | atom
    pub(crate) fn formula(&mut self) -> Result<Formula, LangError> {
        let mut f = self.and_formula()?;
        while self.at(Tok::Kw(Kw::Or)) {
            self.bump();
            let r = self.and_formula()?;
            f = Formula::Or(Box::new(f), Box::new(r));
        }
        Ok(f)
    }

    fn and_formula(&mut self) -> Result<Formula, LangError> {
        let mut f = self.not_formula()?;
        while self.at(Tok::Kw(Kw::And)) {
            self.bump();
            let r = self.not_formula()?;
            f = Formula::And(Box::new(f), Box::new(r));
        }
        Ok(f)
    }

    fn not_formula(&mut self) -> Result<Formula, LangError> {
        if self.at(Tok::Kw(Kw::Not)) {
            self.bump();
            let inner = self.not_formula()?;
            return Ok(Formula::Not(Box::new(inner)));
        }
        self.atom_formula()
    }

    fn atom_formula(&mut self) -> Result<Formula, LangError> {
        match self.peek().clone() {
            Tok::Kw(Kw::True) => {
                self.bump();
                Ok(Formula::True)
            }
            Tok::Kw(Kw::False) => {
                self.bump();
                Ok(Formula::False)
            }
            Tok::Kw(Kw::Some) | Tok::Kw(Kw::All) => {
                let universal = self.at(Tok::Kw(Kw::All));
                self.bump();
                let mut vars = vec![self.ident()?];
                while self.at(Tok::Comma) {
                    self.bump();
                    vars.push(self.ident()?);
                }
                self.expect_kw(Kw::In)?;
                let range = self.range_expr()?;
                self.expect(Tok::LParen)?;
                let body = self.formula()?;
                self.expect(Tok::RParen)?;
                // `SOME r1, r2 IN R (p)` nests right.
                let mut f = body;
                for v in vars.into_iter().rev() {
                    f = if universal {
                        Formula::All(v, range.clone(), Box::new(f))
                    } else {
                        Formula::Some(v, range.clone(), Box::new(f))
                    };
                }
                Ok(f)
            }
            Tok::Lt => {
                // `<e1, …> IN range`
                self.bump();
                let mut exprs = vec![self.scalar_expr()?];
                while self.at(Tok::Comma) {
                    self.bump();
                    exprs.push(self.scalar_expr()?);
                }
                self.expect(Tok::Gt)?;
                self.expect_kw(Kw::In)?;
                let range = self.range_expr()?;
                Ok(Formula::TupleIn(exprs, range))
            }
            Tok::LParen => {
                // Could be a parenthesised formula or a parenthesised
                // scalar expression in a comparison: backtrack.
                let save = self.pos;
                self.bump();
                if let Ok(f) = self.formula() {
                    if self.at(Tok::RParen) {
                        // Ensure it is not actually a scalar expr
                        // followed by a comparison (e.g. `(x) = 1` can
                        // parse either way; comparison requires a cmp
                        // token after `)`).
                        let after = self.peek_at(1).clone();
                        let is_cmp = matches!(
                            after,
                            Tok::Eq | Tok::Ne | Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge
                        );
                        if !is_cmp {
                            self.bump(); // `)`
                            return Ok(f);
                        }
                    }
                }
                self.pos = save;
                self.comparison()
            }
            _ => {
                // Membership `v IN range` or a comparison.
                if let Tok::Ident(v) = self.peek().clone() {
                    if *self.peek_at(1) == Tok::Kw(Kw::In) {
                        self.bump();
                        self.bump();
                        let range = self.range_expr()?;
                        return Ok(Formula::Member(v, range));
                    }
                }
                self.comparison()
            }
        }
    }

    fn comparison(&mut self) -> Result<Formula, LangError> {
        let l = self.scalar_expr()?;
        let op = match self.peek() {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            other => return self.err(format!("expected a comparison operator, found {other:?}")),
        };
        self.bump();
        let r = self.scalar_expr()?;
        Ok(Formula::Cmp(l, op, r))
    }

    // scalar := term ((+|-) term)*
    // term   := factor ((*|DIV|MOD) factor)*
    // factor := literal | ident[.ident] | ( scalar )
    pub(crate) fn scalar_expr(&mut self) -> Result<ScalarExpr, LangError> {
        let mut e = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => ArithOp::Add,
                Tok::Minus => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.term()?;
            e = ScalarExpr::Arith(Box::new(e), op, Box::new(r));
        }
        Ok(e)
    }

    fn term(&mut self) -> Result<ScalarExpr, LangError> {
        let mut e = self.factor()?;
        loop {
            let op = match self.peek() {
                Tok::Star => ArithOp::Mul,
                Tok::Kw(Kw::Div) => ArithOp::Div,
                Tok::Kw(Kw::Mod) => ArithOp::Mod,
                _ => break,
            };
            self.bump();
            let r = self.factor()?;
            e = ScalarExpr::Arith(Box::new(e), op, Box::new(r));
        }
        Ok(e)
    }

    fn factor(&mut self) -> Result<ScalarExpr, LangError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(ScalarExpr::Const(Value::Int(n)))
            }
            Tok::Card(n) => {
                self.bump();
                Ok(ScalarExpr::Const(Value::Card(n)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(ScalarExpr::Const(Value::str(s)))
            }
            Tok::Kw(Kw::True) => {
                self.bump();
                Ok(ScalarExpr::Const(Value::Bool(true)))
            }
            Tok::Kw(Kw::False) => {
                self.bump();
                Ok(ScalarExpr::Const(Value::Bool(false)))
            }
            Tok::Minus => {
                self.bump();
                let inner = self.factor()?;
                Ok(ScalarExpr::Arith(
                    Box::new(ScalarExpr::Const(Value::Int(0))),
                    ArithOp::Sub,
                    Box::new(inner),
                ))
            }
            Tok::Ident(name) => {
                self.bump();
                if self.at(Tok::Dot) {
                    self.bump();
                    let attr = self.ident()?;
                    Ok(ScalarExpr::Attr(name, attr))
                } else {
                    // A bare identifier in scalar position is a
                    // parameter reference (e.g. `Obj`).
                    Ok(ScalarExpr::Param(name))
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.scalar_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => self.err(format!("expected a scalar expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_calculus::builder as b;

    #[test]
    fn parse_type_defs() {
        let s = parse_script(
            "TYPE parttype = STRING;\n\
             TYPE partid = RANGE 1..100;\n\
             TYPE infrontrel = RELATION ... OF RECORD front, back: parttype END;\n\
             TYPE objectrel = RELATION part OF RECORD part: parttype; weight: INTEGER END;",
        )
        .unwrap();
        assert_eq!(s.len(), 4);
        assert!(matches!(
            &s[1],
            Stmt::TypeDef {
                def: TypeExpr::Range(1, 100),
                ..
            }
        ));
        match &s[2] {
            Stmt::TypeDef {
                def: TypeExpr::Relation { key, fields },
                ..
            } => {
                assert!(key.is_empty());
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].0, "front");
            }
            other => panic!("{other:?}"),
        }
        match &s[3] {
            Stmt::TypeDef {
                def: TypeExpr::Relation { key, fields },
                ..
            } => {
                assert_eq!(key, &vec!["part".to_string()]);
                assert_eq!(fields.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_selector_from_the_paper() {
        let s = parse_script(
            "SELECTOR hidden_by (Obj: parttype) FOR Rel: infrontrel ();\n\
             BEGIN EACH r IN Rel: r.front = Obj END hidden_by;",
        )
        .unwrap();
        match &s[0] {
            Stmt::SelectorDef {
                name,
                params,
                element_var,
                predicate,
                ..
            } => {
                assert_eq!(name, "hidden_by");
                assert_eq!(params.len(), 1);
                assert_eq!(element_var, "r");
                assert_eq!(*predicate, b::eq(b::attr("r", "front"), b::param("Obj")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_recursive_constructor_from_the_paper() {
        let s = parse_script(
            "CONSTRUCTOR ahead FOR Rel: infrontrel (): aheadrel;\n\
             BEGIN EACH r IN Rel: TRUE,\n\
               <f.front, b.tail> OF EACH f IN Rel,\n\
                 EACH b IN Rel{ahead()}: f.back = b.head\n\
             END ahead;",
        )
        .unwrap();
        match &s[0] {
            Stmt::ConstructorDef {
                name,
                branches,
                base_var,
                result_type,
                ..
            } => {
                assert_eq!(name, "ahead");
                assert_eq!(base_var, "Rel");
                assert_eq!(result_type, "aheadrel");
                assert_eq!(branches.len(), 2);
                assert!(matches!(
                    &branches[1].bindings[1].1,
                    RangeExpr::Constructed { constructor, .. } if constructor == "ahead"
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_mutual_constructor_with_params() {
        let s = parse_script(
            "CONSTRUCTOR above FOR Rel: ontoprel (Infront: infrontrel): aboverel;\n\
             BEGIN EACH r IN Rel: TRUE,\n\
               <r.top, ah.tail> OF EACH r IN Rel,\n\
                 EACH ah IN Infront{ahead(Rel)}: r.base = ah.head\n\
             END above;",
        )
        .unwrap();
        match &s[0] {
            Stmt::ConstructorDef { rel_params, .. } => {
                assert_eq!(
                    rel_params,
                    &vec![("Infront".to_string(), "infrontrel".to_string())]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_each_var_list_sugar() {
        // The paper's `EACH f,b IN Infront`.
        let e =
            parse_expr("{<f.front, b.back> OF EACH f, b IN Infront: f.back = b.front}").unwrap();
        match e {
            RangeExpr::SetFormer(sf) => {
                assert_eq!(sf.branches[0].bindings.len(), 2);
                assert_eq!(sf.branches[0].bindings[0].0, "f");
                assert_eq!(sf.branches[0].bindings[1].0, "b");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn parse_applications_and_composition() {
        let e = parse_expr("Infront[hidden_by(\"table\")]{ahead(Ontop)}").unwrap();
        assert_eq!(e.to_string(), "Infront[hidden_by(\"table\")]{ahead(Ontop)}");
        // Scalar args after `;`.
        let e2 = parse_expr("N{below(; 4)}").unwrap();
        match &e2 {
            RangeExpr::Constructed {
                scalar_args, args, ..
            } => {
                assert!(args.is_empty());
                assert_eq!(scalar_args.len(), 1);
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn parse_quantifiers_membership_negation() {
        let e = parse_expr(
            "{EACH r IN Infront: SOME o1, o2 IN Objects (r.front = o1.part AND r.back = o2.part)}",
        )
        .unwrap();
        let shown = e.to_string();
        assert!(shown.contains("SOME o1 IN Objects"));
        assert!(shown.contains("SOME o2 IN Objects"));

        let m = parse_expr("{EACH r IN Rel: NOT (r IN Rel)}").unwrap();
        assert!(m.to_string().contains("NOT (r IN Rel)"));

        let t = parse_expr("{EACH r IN Rel: <r.back, r.front> IN Rel}").unwrap();
        assert!(t.to_string().contains("<r.back, r.front> IN Rel"));
    }

    #[test]
    fn parse_arithmetic_with_precedence() {
        let e = parse_expr("{EACH r IN N: r.n + 2 * 3 = 7}").unwrap();
        // Multiplication binds tighter.
        assert!(e.to_string().contains("(r.n + (2 * 3))"));
    }

    #[test]
    fn parse_strange_constructor() {
        // §3.3's strange, with CARDINAL literals.
        let s = parse_script(
            "CONSTRUCTOR strange FOR Baserel: cardrel (): cardrel;\n\
             BEGIN EACH r IN Baserel:\n\
               NOT SOME s IN Baserel{strange()} (r.number = s.number + 1C)\n\
             END strange;",
        )
        .unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn parse_insert_and_query() {
        let s = parse_script(
            "INSERT Infront <\"vase\", \"table\">;\n\
             QUERY {EACH r IN Infront: TRUE};",
        )
        .unwrap();
        assert!(matches!(&s[0], Stmt::Insert { values, .. } if values.len() == 2));
        assert!(matches!(&s[1], Stmt::Query { .. }));
    }

    #[test]
    fn parenthesised_formula_vs_scalar() {
        let f = parse_expr("{EACH r IN N: (r.n = 1 OR r.n = 2) AND r.n # 3}").unwrap();
        let shown = f.to_string();
        assert!(shown.contains("OR"));
        assert!(shown.contains("AND"));
        // Parenthesised scalar on the left of a comparison.
        let g = parse_expr("{EACH r IN N: (r.n + 1) = 2}").unwrap();
        assert!(g.to_string().contains("(r.n + 1) = 2"));
    }

    #[test]
    fn parse_errors_have_positions() {
        let err = parse_script("TYPE = STRING;").unwrap_err();
        assert!(matches!(err, LangError::Parse { line: 1, .. }));
        let err = parse_script("CONSTRUCTOR c FOR R: t (): u;\nBEGIN EACH r IN R: TRUE END wrong;")
            .unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn negative_literals() {
        let s = parse_script("INSERT N <-5>;").unwrap();
        assert!(matches!(&s[0], Stmt::Insert { values, .. } if values[0] == Value::Int(-5)));
        let t = parse_script("TYPE t = RANGE -10..10;").unwrap();
        assert!(matches!(
            &t[0],
            Stmt::TypeDef {
                def: TypeExpr::Range(-10, 10),
                ..
            }
        ));
    }
}
