//! Value substrate for the Data Constructors engine.
//!
//! This crate provides the scalar layer that every other crate builds on:
//!
//! * [`Domain`] — the DBPL-style scalar type system, including subrange
//!   domains (`RANGE 1..100` in the paper's §2.1 example),
//! * [`Value`] — dynamically typed scalar values with total ordering,
//! * [`Tuple`] — immutable fixed-arity rows,
//! * [`Schema`] / [`Attribute`] — named, typed attribute lists with an
//!   optional key (the paper's `RELATION key OF elementtype`, §2.2),
//! * [`fxhash`] — a small FxHash-style hasher so that tuple-heavy hash
//!   joins and set semantics do not pay for SipHash.
//!
//! The paper's examples (`parttype`, `infrontrel`, …) are expressible
//! directly with these types; see `dc-relation` for the relation layer.

pub mod domain;
pub mod error;
pub mod fxhash;
pub mod schema;
pub mod tuple;
pub mod value;

pub use domain::Domain;
pub use error::{TypeError, ValueError};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use schema::{Attribute, Schema};
pub use tuple::Tuple;
pub use value::Value;
