//! Dynamically typed scalar values.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::ValueError;

/// A scalar value flowing through the engine.
///
/// Strings are reference-counted so that tuples can be cloned freely
/// during fixpoint iteration without re-allocating string payloads.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Signed integer (`INTEGER`).
    Int(i64),
    /// Unsigned integer (`CARDINAL`).
    Card(u64),
    /// String.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Short tag used in error messages and plan explanations.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "INTEGER",
            Value::Card(_) => "CARDINAL",
            Value::Str(_) => "STRING",
            Value::Bool(_) => "BOOLEAN",
        }
    }

    /// Comparison between values of the same base type.
    ///
    /// Returns `None` for cross-type comparisons, which the calculus type
    /// checker rejects statically; the runtime treats them as errors.
    pub fn try_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Card(a), Value::Card(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    fn binop(
        &self,
        other: &Value,
        op: &'static str,
        int_op: impl Fn(i64, i64) -> Result<i64, ValueError>,
        card_op: impl Fn(u64, u64) -> Result<u64, ValueError>,
    ) -> Result<Value, ValueError> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => int_op(*a, *b).map(Value::Int),
            (Value::Card(a), Value::Card(b)) => card_op(*a, *b).map(Value::Card),
            _ => Err(ValueError::IncompatibleOperands {
                op,
                lhs: self.clone(),
                rhs: other.clone(),
            }),
        }
    }

    /// Checked addition.
    pub fn add(&self, other: &Value) -> Result<Value, ValueError> {
        self.binop(
            other,
            "+",
            |a, b| a.checked_add(b).ok_or(ValueError::Overflow),
            |a, b| a.checked_add(b).ok_or(ValueError::Overflow),
        )
    }

    /// Checked subtraction; `CARDINAL` underflow is an error, matching
    /// MODULA-2 semantics.
    pub fn sub(&self, other: &Value) -> Result<Value, ValueError> {
        self.binop(
            other,
            "-",
            |a, b| a.checked_sub(b).ok_or(ValueError::Overflow),
            |a, b| a.checked_sub(b).ok_or(ValueError::CardinalUnderflow),
        )
    }

    /// Checked multiplication.
    pub fn mul(&self, other: &Value) -> Result<Value, ValueError> {
        self.binop(
            other,
            "*",
            |a, b| a.checked_mul(b).ok_or(ValueError::Overflow),
            |a, b| a.checked_mul(b).ok_or(ValueError::Overflow),
        )
    }

    /// Checked division (`DIV`).
    pub fn div(&self, other: &Value) -> Result<Value, ValueError> {
        self.binop(
            other,
            "DIV",
            |a, b| {
                if b == 0 {
                    Err(ValueError::DivisionByZero)
                } else {
                    a.checked_div(b).ok_or(ValueError::Overflow)
                }
            },
            |a, b| a.checked_div(b).ok_or(ValueError::DivisionByZero),
        )
    }

    /// Checked modulus (`MOD`, as in the paper's `primetype` annotation:
    /// `p MOD n # 0`).
    pub fn rem(&self, other: &Value) -> Result<Value, ValueError> {
        self.binop(
            other,
            "MOD",
            |a, b| {
                if b == 0 {
                    Err(ValueError::DivisionByZero)
                } else {
                    Ok(a.rem_euclid(b))
                }
            },
            |a, b| {
                if b == 0 {
                    Err(ValueError::DivisionByZero)
                } else {
                    Ok(a % b)
                }
            },
        )
    }

    /// Extract a boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract an `i64`, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract a `u64`, if this is a `Card`.
    pub fn as_card(&self) -> Option<u64> {
        match self {
            Value::Card(c) => Some(*c),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Card(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

/// Total order across all values: within a base type the natural order,
/// across base types an arbitrary but fixed order (Int < Card < Str <
/// Bool). Used for deterministic output ordering, never for predicate
/// semantics (cross-type predicate comparison is a type error).
impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Int(_) => 0,
                Value::Card(_) => 1,
                Value::Str(_) => 2,
                Value::Bool(_) => 3,
            }
        }
        self.try_cmp(other)
            .unwrap_or_else(|| rank(self).cmp(&rank(other)))
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Card(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "\"{v}\""),
            Value::Bool(v) => write!(f, "{}", if *v { "TRUE" } else { "FALSE" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_int() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(Value::Int(2).sub(&Value::Int(3)).unwrap(), Value::Int(-1));
        assert_eq!(Value::Int(4).mul(&Value::Int(3)).unwrap(), Value::Int(12));
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(Value::Int(7).rem(&Value::Int(3)).unwrap(), Value::Int(1));
    }

    #[test]
    fn arithmetic_card() {
        assert_eq!(Value::Card(2).add(&Value::Card(3)).unwrap(), Value::Card(5));
        assert_eq!(
            Value::Card(2).sub(&Value::Card(3)),
            Err(ValueError::CardinalUnderflow)
        );
    }

    #[test]
    fn division_by_zero() {
        assert_eq!(
            Value::Int(1).div(&Value::Int(0)),
            Err(ValueError::DivisionByZero)
        );
        assert_eq!(
            Value::Card(1).rem(&Value::Card(0)),
            Err(ValueError::DivisionByZero)
        );
    }

    #[test]
    fn overflow_detected() {
        assert_eq!(
            Value::Int(i64::MAX).add(&Value::Int(1)),
            Err(ValueError::Overflow)
        );
        assert_eq!(
            Value::Card(u64::MAX).mul(&Value::Card(2)),
            Err(ValueError::Overflow)
        );
    }

    #[test]
    fn cross_type_arithmetic_rejected() {
        assert!(matches!(
            Value::Int(1).add(&Value::Card(1)),
            Err(ValueError::IncompatibleOperands { .. })
        ));
    }

    #[test]
    fn mod_euclid_for_negatives() {
        // `p MOD n` in MODULA-2 is non-negative for positive n.
        assert_eq!(Value::Int(-1).rem(&Value::Int(5)).unwrap(), Value::Int(4));
    }

    #[test]
    fn comparisons() {
        assert_eq!(Value::Int(1).try_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::str("a").try_cmp(&Value::str("b")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Int(1).try_cmp(&Value::Card(1)), None);
    }

    #[test]
    fn total_order_is_total() {
        let mut vals = [
            Value::str("b"),
            Value::Bool(true),
            Value::Int(3),
            Value::Card(1),
            Value::str("a"),
            Value::Int(-1),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Int(-1));
        assert_eq!(vals[1], Value::Int(3));
        assert_eq!(vals[2], Value::Card(1));
        assert_eq!(vals[3], Value::str("a"));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::str("t").to_string(), "\"t\"");
        assert_eq!(Value::Bool(false).to_string(), "FALSE");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3u64), Value::Card(3));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Card(3).as_card(), Some(3));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(1).as_bool(), None);
    }
}
