//! Error types for the value layer.

use std::fmt;

use crate::domain::Domain;
use crate::value::Value;

/// Errors raised when values are combined or coerced incorrectly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    /// Arithmetic between incompatible values (`1 + "a"`).
    IncompatibleOperands {
        /// Textual operator, e.g. `"+"`.
        op: &'static str,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Division or modulus by zero.
    DivisionByZero,
    /// Integer overflow during arithmetic.
    Overflow,
    /// A `CARDINAL` operation would go below zero (the paper uses
    /// MODULA-2 `CARDINAL` in its `strange` example, §3.3).
    CardinalUnderflow,
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::IncompatibleOperands { op, lhs, rhs } => {
                write!(f, "incompatible operands for `{op}`: {lhs} and {rhs}")
            }
            ValueError::DivisionByZero => write!(f, "division by zero"),
            ValueError::Overflow => write!(f, "integer overflow"),
            ValueError::CardinalUnderflow => write!(f, "CARDINAL result below zero"),
        }
    }
}

impl std::error::Error for ValueError {}

/// Errors raised when a value does not fit a domain or a tuple does not
/// fit a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// The value's base type is not the domain's base type.
    DomainMismatch {
        /// Expected domain.
        expected: Domain,
        /// Offending value.
        value: Value,
    },
    /// The value is of the right base type but violates a subrange
    /// constraint (`RANGE 1..100` with value 200).
    RangeViolation {
        /// Expected domain.
        expected: Domain,
        /// Offending value.
        value: Value,
    },
    /// A tuple has the wrong number of fields for a schema.
    ArityMismatch {
        /// Attributes in the schema.
        expected: usize,
        /// Fields in the tuple.
        actual: usize,
    },
    /// An attribute name was not found in a schema.
    UnknownAttribute {
        /// The name that failed to resolve.
        name: String,
    },
    /// Two schemas that had to be identical were not.
    SchemaMismatch {
        /// Description of the context in which the mismatch occurred.
        context: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::DomainMismatch { expected, value } => {
                write!(f, "value {value} does not belong to domain {expected}")
            }
            TypeError::RangeViolation { expected, value } => {
                write!(f, "value {value} violates range constraint of {expected}")
            }
            TypeError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "tuple arity {actual} does not match schema arity {expected}"
                )
            }
            TypeError::UnknownAttribute { name } => {
                write!(f, "unknown attribute `{name}`")
            }
            TypeError::SchemaMismatch { context } => {
                write!(f, "schema mismatch: {context}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = ValueError::IncompatibleOperands {
            op: "+",
            lhs: Value::Int(1),
            rhs: Value::Str("a".into()),
        };
        assert!(e.to_string().contains('+'));
        let t = TypeError::ArityMismatch {
            expected: 2,
            actual: 3,
        };
        assert!(t.to_string().contains('3'));
        let u = TypeError::UnknownAttribute {
            name: "front".into(),
        };
        assert!(u.to_string().contains("front"));
    }
}
