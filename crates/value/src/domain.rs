//! Scalar domains: the DBPL type calculus of the paper's §2.1.
//!
//! The paper illustrates types as domain predicates:
//!
//! ```text
//! partidtype IS RANGE 1..100
//! partidtype = { EACH p IN integer: 1 <= p AND p <= 100 }
//! ```
//!
//! [`Domain`] captures exactly that expressible fragment: base types plus
//! subrange restrictions. Admission checking ([`Domain::check`]) is the
//! run-time test the paper's type checker compiles to
//! (`IF (1<=ix) AND (ix<=100) THEN p:=ix ELSE <exception>`).

use std::fmt;

use crate::error::TypeError;
use crate::value::Value;

/// A scalar domain (DBPL base type, possibly range-restricted).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Signed integers (`INTEGER`).
    Int,
    /// Unsigned integers (`CARDINAL`, used by the paper's `strange`
    /// constructor example, §3.3).
    Card,
    /// Strings (`parttype` keys like `"table"` in the `hidden_by`
    /// selector example, §3.1).
    Str,
    /// Booleans.
    Bool,
    /// `RANGE lo..hi` over `INTEGER`, inclusive on both ends.
    IntRange(i64, i64),
    /// `RANGE lo..hi` over `CARDINAL`, inclusive on both ends.
    CardRange(u64, u64),
}

impl Domain {
    /// The base domain with range restrictions stripped.
    pub fn base(&self) -> Domain {
        match self {
            Domain::IntRange(..) => Domain::Int,
            Domain::CardRange(..) => Domain::Card,
            other => other.clone(),
        }
    }

    /// Does `value` belong to this domain's base type, regardless of any
    /// range constraint?
    pub fn admits_base(&self, value: &Value) -> bool {
        matches!(
            (self.base(), value),
            (Domain::Int, Value::Int(_))
                | (Domain::Card, Value::Card(_))
                | (Domain::Str, Value::Str(_))
                | (Domain::Bool, Value::Bool(_))
        )
    }

    /// Full admission check: base type and range constraint.
    ///
    /// Mirrors the run-time code the paper's type checker generates for
    /// subtype assignment (§2.1).
    pub fn check(&self, value: &Value) -> Result<(), TypeError> {
        if !self.admits_base(value) {
            return Err(TypeError::DomainMismatch {
                expected: self.clone(),
                value: value.clone(),
            });
        }
        let in_range = match (self, value) {
            (Domain::IntRange(lo, hi), Value::Int(v)) => lo <= v && v <= hi,
            (Domain::CardRange(lo, hi), Value::Card(v)) => lo <= v && v <= hi,
            _ => true,
        };
        if in_range {
            Ok(())
        } else {
            Err(TypeError::RangeViolation {
                expected: self.clone(),
                value: value.clone(),
            })
        }
    }

    /// Are two domains compatible for comparison purposes (same base)?
    pub fn comparable_with(&self, other: &Domain) -> bool {
        self.base() == other.base()
    }

    /// Is this a numeric domain (arithmetic allowed)?
    pub fn is_numeric(&self) -> bool {
        matches!(self.base(), Domain::Int | Domain::Card)
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Int => write!(f, "INTEGER"),
            Domain::Card => write!(f, "CARDINAL"),
            Domain::Str => write!(f, "STRING"),
            Domain::Bool => write!(f, "BOOLEAN"),
            Domain::IntRange(lo, hi) => write!(f, "RANGE {lo}..{hi}"),
            Domain::CardRange(lo, hi) => write!(f, "CARDINAL RANGE {lo}..{hi}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_strips_ranges() {
        assert_eq!(Domain::IntRange(1, 100).base(), Domain::Int);
        assert_eq!(Domain::CardRange(0, 9).base(), Domain::Card);
        assert_eq!(Domain::Str.base(), Domain::Str);
    }

    #[test]
    fn admits_base_types() {
        assert!(Domain::Int.admits_base(&Value::Int(-3)));
        assert!(!Domain::Int.admits_base(&Value::Card(3)));
        assert!(Domain::Str.admits_base(&Value::Str("t".into())));
        assert!(Domain::Bool.admits_base(&Value::Bool(true)));
    }

    #[test]
    fn partidtype_range_example() {
        // The paper's `partidtype IS RANGE 1..100`.
        let partid = Domain::IntRange(1, 100);
        assert!(partid.check(&Value::Int(1)).is_ok());
        assert!(partid.check(&Value::Int(100)).is_ok());
        assert!(matches!(
            partid.check(&Value::Int(0)),
            Err(TypeError::RangeViolation { .. })
        ));
        assert!(matches!(
            partid.check(&Value::Str("x".into())),
            Err(TypeError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn cardinal_range() {
        let d = Domain::CardRange(2, 5);
        assert!(d.check(&Value::Card(2)).is_ok());
        assert!(d.check(&Value::Card(6)).is_err());
        assert!(d.check(&Value::Int(3)).is_err());
    }

    #[test]
    fn comparability() {
        assert!(Domain::IntRange(1, 5).comparable_with(&Domain::Int));
        assert!(!Domain::Int.comparable_with(&Domain::Card));
        assert!(Domain::Int.is_numeric());
        assert!(Domain::Card.is_numeric());
        assert!(!Domain::Str.is_numeric());
    }

    #[test]
    fn display() {
        assert_eq!(Domain::IntRange(1, 100).to_string(), "RANGE 1..100");
        assert_eq!(Domain::Card.to_string(), "CARDINAL");
    }
}
