//! Immutable fixed-arity tuples.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// A row of a relation.
///
/// Tuples are immutable and cheap to clone (`Arc`-backed): fixpoint
/// iteration copies tuples between the delta, accumulator, and result
/// sets constantly, so cloning must be a refcount bump, not a deep copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    fields: Arc<[Value]>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(fields: impl Into<Vec<Value>>) -> Tuple {
        Tuple {
            fields: Arc::from(fields.into()),
        }
    }

    /// The empty tuple (arity 0).
    pub fn empty() -> Tuple {
        Tuple {
            fields: Arc::from(Vec::new()),
        }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Field at position `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.fields[i]
    }

    /// All fields as a slice.
    pub fn fields(&self) -> &[Value] {
        &self.fields
    }

    /// Project onto the given positions, producing a new tuple.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(
            positions
                .iter()
                .map(|&i| self.fields[i].clone())
                .collect::<Vec<_>>(),
        )
    }

    /// Concatenate two tuples (used by join targets).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.fields);
        v.extend_from_slice(&other.fields);
        Tuple::new(v)
    }

    /// Iterate over the fields.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.fields.iter()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Tuple {
        Tuple::new(v)
    }
}

/// Tuples borrow as value slices, so hash maps keyed by `Tuple` can be
/// probed with a scratch `&[Value]` — no per-probe `Tuple` (and `Arc`)
/// allocation on join hot paths. Sound because the derived `Hash`/`Eq`
/// of `Tuple` delegate to the field slice.
impl std::borrow::Borrow<[Value]> for Tuple {
    fn borrow(&self) -> &[Value] {
        self.fields()
    }
}

/// Convenience macro for building tuples in tests and examples:
/// `tuple!["a", 3i64]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple!["vase", "table"];
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(0), &Value::str("vase"));
        assert_eq!(t.get(1), &Value::str("table"));
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::empty();
        assert_eq!(t.arity(), 0);
        assert_eq!(t.to_string(), "<>");
    }

    #[test]
    fn projection() {
        let t = tuple![1i64, 2i64, 3i64];
        let p = t.project(&[2, 0]);
        assert_eq!(p, tuple![3i64, 1i64]);
    }

    #[test]
    fn concat() {
        let a = tuple![1i64];
        let b = tuple!["x", true];
        assert_eq!(a.concat(&b), tuple![1i64, "x", true]);
    }

    #[test]
    fn clone_is_shallow() {
        let t = tuple!["long-ish string payload"];
        let u = t.clone();
        // Arc payload is shared, not copied.
        assert!(std::ptr::eq(t.fields().as_ptr(), u.fields().as_ptr()));
    }

    #[test]
    fn equality_and_hash_follow_fields() {
        use crate::fxhash::hash_one;
        let a = tuple![1i64, "x"];
        let b = tuple![1i64, "x"];
        assert_eq!(a, b);
        assert_eq!(hash_one(&a), hash_one(&b));
    }

    #[test]
    fn display() {
        assert_eq!(tuple![1i64, "a"].to_string(), "<1, \"a\">");
    }
}
