//! Relation schemas: named, typed attribute lists with an optional key.
//!
//! Corresponds to the paper's relation type definitions (§2.2/§2.3):
//!
//! ```text
//! TYPE infrontrel = RELATION ... OF RECORD front, back: parttype END;
//! TYPE objectrel  = RELATION part OF objecttype;
//! ```

use std::fmt;
use std::sync::Arc;

use crate::domain::Domain;
use crate::error::TypeError;
use crate::tuple::Tuple;

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (e.g. `front`).
    pub name: String,
    /// Attribute domain (e.g. `parttype`).
    pub domain: Domain,
}

impl Attribute {
    /// Build an attribute.
    pub fn new(name: impl Into<String>, domain: Domain) -> Attribute {
        Attribute {
            name: name.into(),
            domain,
        }
    }
}

/// Inner data of a schema; schemas are shared immutably via `Arc`.
#[derive(Debug, PartialEq, Eq)]
struct SchemaInner {
    attributes: Vec<Attribute>,
    /// Positions of key attributes; empty means "whole tuple is the key"
    /// (pure set semantics, the `RELATION ... OF` of the paper where no
    /// key is spelled out).
    key: Vec<usize>,
}

/// A relation schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

impl Schema {
    /// Build a schema with no designated key (set semantics: the whole
    /// tuple identifies the element).
    pub fn new(attributes: Vec<Attribute>) -> Schema {
        Schema {
            inner: Arc::new(SchemaInner {
                attributes,
                key: Vec::new(),
            }),
        }
    }

    /// Build a schema with the named key attributes
    /// (`RELATION part OF objecttype`).
    pub fn with_key(attributes: Vec<Attribute>, key_names: &[&str]) -> Result<Schema, TypeError> {
        let mut key = Vec::with_capacity(key_names.len());
        for name in key_names {
            let pos = attributes
                .iter()
                .position(|a| a.name == *name)
                .ok_or_else(|| TypeError::UnknownAttribute {
                    name: (*name).to_string(),
                })?;
            key.push(pos);
        }
        Ok(Schema {
            inner: Arc::new(SchemaInner { attributes, key }),
        })
    }

    /// Convenience constructor: attributes from `(name, domain)` pairs.
    pub fn of(pairs: &[(&str, Domain)]) -> Schema {
        Schema::new(
            pairs
                .iter()
                .map(|(n, d)| Attribute::new(*n, d.clone()))
                .collect(),
        )
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.inner.attributes.len()
    }

    /// The attributes in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.inner.attributes
    }

    /// Positions of the key attributes; empty ⇒ whole tuple is key.
    pub fn key(&self) -> &[usize] {
        &self.inner.key
    }

    /// Does the schema designate a proper key (a strict subset of the
    /// attributes)?
    pub fn has_proper_key(&self) -> bool {
        !self.inner.key.is_empty() && self.inner.key.len() < self.arity()
    }

    /// Resolve an attribute name to its position.
    pub fn position(&self, name: &str) -> Result<usize, TypeError> {
        self.inner
            .attributes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| TypeError::UnknownAttribute {
                name: name.to_string(),
            })
    }

    /// Domain of the attribute at `pos`.
    pub fn domain(&self, pos: usize) -> &Domain {
        &self.inner.attributes[pos].domain
    }

    /// Extract the key projection of a tuple. With no designated key the
    /// whole tuple is returned.
    pub fn key_of(&self, tuple: &Tuple) -> Tuple {
        if self.inner.key.is_empty() {
            tuple.clone()
        } else {
            tuple.project(&self.inner.key)
        }
    }

    /// Check a tuple against the schema: arity and per-field domains.
    pub fn check_tuple(&self, tuple: &Tuple) -> Result<(), TypeError> {
        if tuple.arity() != self.arity() {
            return Err(TypeError::ArityMismatch {
                expected: self.arity(),
                actual: tuple.arity(),
            });
        }
        for (i, attr) in self.inner.attributes.iter().enumerate() {
            attr.domain.check(tuple.get(i))?;
        }
        Ok(())
    }

    /// Are two schemas union-compatible (same arity and pairwise
    /// comparable domains)? Attribute names may differ: the paper unions
    /// `<f.front, b.back>` projections with `Infront` tuples.
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.arity() == other.arity()
            && self
                .attributes()
                .iter()
                .zip(other.attributes())
                .all(|(a, b)| a.domain.comparable_with(&b.domain))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RELATION ")?;
        if self.inner.key.is_empty() {
            write!(f, "...")?;
        } else {
            for (i, &k) in self.inner.key.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.inner.attributes[k].name)?;
            }
        }
        write!(f, " OF RECORD ")?;
        for (i, a) in self.inner.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{}: {}", a.name, a.domain)?;
        }
        write!(f, " END")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn infrontrel() -> Schema {
        Schema::of(&[("front", Domain::Str), ("back", Domain::Str)])
    }

    #[test]
    fn positions_and_domains() {
        let s = infrontrel();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.position("front").unwrap(), 0);
        assert_eq!(s.position("back").unwrap(), 1);
        assert!(matches!(
            s.position("top"),
            Err(TypeError::UnknownAttribute { .. })
        ));
        assert_eq!(s.domain(0), &Domain::Str);
    }

    #[test]
    fn key_handling() {
        let s = Schema::with_key(
            vec![
                Attribute::new("part", Domain::Str),
                Attribute::new("weight", Domain::Int),
            ],
            &["part"],
        )
        .unwrap();
        assert!(s.has_proper_key());
        let t = tuple!["bolt", 5i64];
        assert_eq!(s.key_of(&t), tuple!["bolt"]);

        let no_key = infrontrel();
        assert!(!no_key.has_proper_key());
        let t2 = tuple!["a", "b"];
        assert_eq!(no_key.key_of(&t2), t2);
    }

    #[test]
    fn with_key_unknown_attribute() {
        let r = Schema::with_key(vec![Attribute::new("a", Domain::Int)], &["b"]);
        assert!(r.is_err());
    }

    #[test]
    fn tuple_checking() {
        let s = infrontrel();
        assert!(s.check_tuple(&tuple!["a", "b"]).is_ok());
        assert!(matches!(
            s.check_tuple(&tuple!["a"]),
            Err(TypeError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check_tuple(&tuple!["a", 3i64]),
            Err(TypeError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn range_domains_checked_in_tuples() {
        let s = Schema::of(&[("id", Domain::IntRange(1, 100))]);
        assert!(s.check_tuple(&tuple![5i64]).is_ok());
        assert!(s.check_tuple(&tuple![500i64]).is_err());
    }

    #[test]
    fn union_compatibility() {
        let a = infrontrel();
        let b = Schema::of(&[("head", Domain::Str), ("tail", Domain::Str)]);
        let c = Schema::of(&[("x", Domain::Int), ("y", Domain::Str)]);
        assert!(a.union_compatible(&b));
        assert!(!a.union_compatible(&c));
        assert!(!a.union_compatible(&Schema::of(&[("z", Domain::Str)])));
    }

    #[test]
    fn display_contains_names() {
        let s = Schema::with_key(
            vec![
                Attribute::new("part", Domain::Str),
                Attribute::new("w", Domain::Int),
            ],
            &["part"],
        )
        .unwrap();
        let d = s.to_string();
        assert!(d.contains("RELATION part OF"));
        assert!(d.contains("w: INTEGER"));
    }
}
