//! A small FxHash-style hasher.
//!
//! The default `std` hasher (SipHash 1-3) is collision-resistant but slow
//! for the short integer/string keys that dominate relational workloads.
//! Hash joins and set-semantics deduplication are the hot loops of a
//! fixpoint engine, so we implement the Firefox/rustc "Fx" multiply-rotate
//! hash locally (~30 lines) rather than pulling in an external crate.
//! HashDoS is not a concern for an embedded, trusted-input engine.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx hash (64-bit golden-ratio-ish).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rotate-multiply-xor hasher used throughout the engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().unwrap());
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
            // Mix in the length so that `"a\0"` and `"a"` differ.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash a single hashable value with the Fx hasher (convenience for tests
/// and for index bucketing).
pub fn hash_one<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one(&"abc"), hash_one(&"abc"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        assert_ne!(hash_one(&"a"), hash_one(&"b"));
    }

    #[test]
    fn distinguishes_trailing_bytes() {
        assert_ne!(hash_one(&[1u8, 0u8][..]), hash_one(&[1u8][..]));
    }

    #[test]
    fn map_and_set_work() {
        let mut map: FxHashMap<&str, i32> = FxHashMap::default();
        map.insert("x", 1);
        map.insert("y", 2);
        assert_eq!(map.get("x"), Some(&1));
        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(7);
        assert!(set.contains(&7));
        assert!(!set.contains(&8));
    }

    #[test]
    fn long_byte_streams() {
        let a: Vec<u8> = (0..64).collect();
        let mut b = a.clone();
        b[63] = 0;
        assert_ne!(hash_one(&a[..]), hash_one(&b[..]));
    }
}
