//! Property-based tests for the value layer.

use proptest::prelude::*;

use dc_value::fxhash::hash_one;
use dc_value::{Domain, Tuple, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<u64>().prop_map(Value::Card),
        "[a-z]{0,8}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

proptest! {
    /// Hash/Eq consistency: equal values hash equally.
    #[test]
    fn hash_eq_consistent(v in value_strategy()) {
        let w = v.clone();
        prop_assert_eq!(&v, &w);
        prop_assert_eq!(hash_one(&v), hash_one(&w));
    }

    /// The total order is antisymmetric and total.
    #[test]
    fn total_order(a in value_strategy(), b in value_strategy()) {
        use std::cmp::Ordering;
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            prop_assert_eq!(&a, &b);
        }
    }

    /// try_cmp agrees with the total order within a base type.
    #[test]
    fn try_cmp_within_type(a in any::<i64>(), b in any::<i64>()) {
        let (va, vb) = (Value::Int(a), Value::Int(b));
        prop_assert_eq!(va.try_cmp(&vb), Some(a.cmp(&b)));
        prop_assert_eq!(va.cmp(&vb), a.cmp(&b));
    }

    /// Addition is commutative when defined; sub inverts add.
    #[test]
    fn arithmetic_laws(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let (va, vb) = (Value::Int(a), Value::Int(b));
        prop_assert_eq!(va.add(&vb).unwrap(), vb.add(&va).unwrap());
        let sum = va.add(&vb).unwrap();
        prop_assert_eq!(sum.sub(&vb).unwrap(), va);
    }

    /// MOD result is always in [0, n) for positive n (MODULA-2
    /// semantics).
    #[test]
    fn mod_range(a in any::<i64>(), n in 1i64..1000) {
        let r = Value::Int(a).rem(&Value::Int(n)).unwrap();
        let r = r.as_int().unwrap();
        prop_assert!((0..n).contains(&r));
    }

    /// Domain admission: a range domain admits exactly its interval.
    #[test]
    fn range_domain_admission(lo in -100i64..100, width in 0i64..100, v in -300i64..300) {
        let hi = lo + width;
        let d = Domain::IntRange(lo, hi);
        let ok = d.check(&Value::Int(v)).is_ok();
        prop_assert_eq!(ok, (lo..=hi).contains(&v));
    }

    /// Tuple projection then arity agrees; concat arity adds.
    #[test]
    fn tuple_laws(fields in prop::collection::vec(value_strategy(), 0..6),
                  other in prop::collection::vec(value_strategy(), 0..6)) {
        let t = Tuple::new(fields.clone());
        prop_assert_eq!(t.arity(), fields.len());
        let u = Tuple::new(other.clone());
        let c = t.concat(&u);
        prop_assert_eq!(c.arity(), fields.len() + other.len());
        // Projection onto all positions is the identity.
        let all: Vec<usize> = (0..t.arity()).collect();
        prop_assert_eq!(t.project(&all), t.clone());
        // Tuple equality follows field equality.
        prop_assert_eq!(Tuple::new(fields.clone()), t);
    }

    /// Tuples hash consistently with equality.
    #[test]
    fn tuple_hash_eq(fields in prop::collection::vec(value_strategy(), 0..5)) {
        let a = Tuple::new(fields.clone());
        let b = Tuple::new(fields);
        prop_assert_eq!(hash_one(&a), hash_one(&b));
    }
}
