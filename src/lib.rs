//! Data Constructors — façade crate.
//!
//! Reproduction of Jarke, Linnemann & Schmidt, *"Data Constructors: On
//! the Integration of Rules and Relations"*, VLDB 1985.
//!
//! This crate re-exports the workspace crates under stable module names
//! so that examples and downstream users can depend on a single package:
//!
//! ```
//! use data_constructors::prelude::*;
//!
//! let objects = ["vase", "table", "chair"];
//! assert_eq!(objects.len(), 3);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! experiment index.

pub use dc_calculus as calculus;
pub use dc_core as core;
pub use dc_exec as exec;
pub use dc_governor as governor;
pub use dc_index as index;
pub use dc_lang as lang;
pub use dc_optimizer as optimizer;
pub use dc_prolog as prolog;
pub use dc_relation as relation;
pub use dc_trace as trace;
pub use dc_value as value;
pub use dc_workload as workload;

/// Commonly used items, re-exported for examples and tests.
pub mod prelude {
    pub use dc_calculus::ast::*;
    pub use dc_core::database::Database;
    pub use dc_core::{constructor::Constructor, selector::Selector};
    pub use dc_relation::Relation;
    pub use dc_value::{tuple, Attribute, Domain, Schema, Tuple, Value};
}
